//! Command-line driver for the flexsnoop simulator.
//!
//! The `flexsnoop` binary exposes the library's main entry points without
//! writing any Rust:
//!
//! ```text
//! flexsnoop list
//! flexsnoop run      --workload barnes --algorithm superset-agg --accesses 8000
//! flexsnoop compare  --workload specjbb --seed 7 --csv
//! flexsnoop timeline --workload specweb --algorithm lazy --transactions 3
//! flexsnoop trace    --workload specjbb --accesses 2000 --out trace.txt
//! flexsnoop replay   --trace trace.txt --algorithm eager
//! flexsnoop run      --workload specjbb --save-at 50000 --snapshot state.snap
//! flexsnoop run      --resume state.snap
//! flexsnoop report   --smoke --probe
//! flexsnoop serve    --socket /tmp/flexsnoop.sock --cache-dir results/cache
//! flexsnoop submit   --socket /tmp/flexsnoop.sock --workloads specjbb --algorithms lazy,eager
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency): every option is a
//! `--key value` pair and unknown keys fail loudly.

pub mod args;
pub mod commands;
pub mod names;

pub use args::{Args, Command};
pub use names::{parse_algorithm, parse_predictor, parse_workload};

/// Entry point shared by the binary and the tests.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or failed runs.
pub fn run(argv: &[String]) -> Result<String, String> {
    let args = Args::parse(argv)?;
    if args.threads > 0 {
        flexsnoop_engine::executor::set_default_threads(args.threads);
    }
    match args.command {
        Command::List => commands::list(),
        Command::Run => commands::run_one(&args),
        Command::Compare => commands::compare(&args),
        Command::Timeline => commands::timeline(&args),
        Command::Trace => commands::trace(&args),
        Command::Replay => commands::replay(&args),
        Command::Directory => commands::directory(&args),
        Command::Report => commands::report(&args),
        Command::Bench => commands::bench(&args),
        Command::Chaos => commands::chaos(&args),
        Command::Serve => commands::serve(&args),
        Command::Submit => commands::submit(&args),
        Command::Scenario => commands::scenario(&args),
        Command::Help => Ok(usage()),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
flexsnoop — embedded-ring snoop coherence simulator (ISCA 2006 reproduction)

USAGE:
    flexsnoop <COMMAND> [--key value ...]

COMMANDS:
    list        List workloads, algorithms and predictor configurations
    run         Run one (workload, algorithm) pair and print statistics
    compare     Run every paper algorithm on one workload
    timeline    Trace the first ring transactions of a run, hop by hop
    trace       Record a workload's access trace to a file
    replay      Replay a recorded trace under one algorithm
    directory   Run the directory-protocol baseline (crates/directory)
    report      Regenerate results/report.md and the bench_*.json artifacts
    bench       Throughput/memory benchmarks (--scale: 1k -> 1M node ring sweep)
    chaos       Sweep seeded ring-fault schedules across the Table 3 algorithms
    serve       Host the sweep service on a Unix socket (NDJSON result stream)
    submit      Send a parameter sweep to a serving socket
    scenario    Run a declarative robustness scenario: `scenario run <name|file>`
                (builtins: partition-heal, churn, hierarchy-partition; see
                DESIGN.md §12 for the scenario file format)
    help        Show this message

OPTIONS (where applicable):
    --workload NAME      Workload profile (see `flexsnoop list`) [specweb]
    --algorithm NAME     Snooping algorithm [superset-agg]
    --predictor NAME     Predictor override (defaults to the algorithm's)
    --accesses N         Accesses per core [4000]
    --seed N             Simulation seed [42]
    --nodes N            CMP nodes on the ring [8]
    --topology T         flat, or hier:<local>x<rings> — group the nodes into
                         <rings> local rings of <local> nodes joined by bridge
                         nodes on a global ring (implies --nodes local*rings);
                         applies to run/compare/timeline/replay/chaos [flat]
    --cluster N          scope the workload's shared pools to clusters of N
                         consecutive cores (0 = the profile's own scope); set
                         N to the hier local-ring size to pin each instance's
                         sharing inside one ring [0]
    --transactions N     Transactions to record for `timeline` [3]
    --trace FILE         Trace file for `replay`
    --out PATH           Output file for `trace`; output dir for `report` [results]
    --csv                Emit CSV instead of an aligned table
    --smoke              `report`: fast scale (the committed report.md scale)
    --probe              `report`: attach observability counters to artifacts
    --check              `report`: fail if the committed report.md is stale
    --via-serve          `report`: run the figure matrix through the sweep
                         service's scheduler and results cache (same bytes
                         modulo the volatile line; --cache-dir persists it)
    --threads N          Worker threads for parallel runs [machine parallelism]
    --scale              `bench`: run the ring-scaling sweep (bench_scale.json)
    --max-nodes N        `bench --scale`: skip sweep points above N [1048576]
    --schedules N        `chaos`: randomized fault schedules to draw [40]
    --schedule SEED      `chaos`: replay exactly one schedule seed (reproducer)
    --budget N           `chaos`: override the plan's fault budget (shrunk prefix)
    --no-retry           `chaos`: disable timeout/retry recovery (self-test)
    --torus-only         `chaos`: fault only torus data legs (no ring faults)
    --static-timeouts    `chaos`: fixed-slack requester timeouts instead of EWMA
    --coverage-out FILE  `chaos`: write per-kind injected-fault counts
    --coverage-baseline FILE
                         `chaos`: fail if a kind FILE proves reachable drew zero
    --predictor-fault K:P:B
                         `run`: corrupt every P-th prediction, B times; K is
                         force-negative (unsafe direction) or force-positive
    --save-at CYCLE      `run`: checkpoint the state at CYCLE (needs --snapshot);
                         the run then continues to completion unchanged
    --snapshot FILE      `run --save-at`: file the checkpoint is written to
    --resume FILE        `run`: restore a checkpoint and run to completion
                         (bit-identical statistics to the uninterrupted run)
    --socket PATH        `serve`/`submit`: the service's Unix socket
    --cache-dir DIR      `serve`/`report --via-serve`: persist the results
                         cache here (one sealed file per job key; survives
                         restarts)
    --workloads LIST     `submit`: comma-separated workload names
    --algorithms LIST    `submit`: comma-separated algorithm names
    --seeds LIST         `submit`: comma-separated seeds [--seed]
    --shutdown           `submit`: stop the server instead of sweeping
    --self-check         `serve`: verify cached results match recomputation
                         across queue backends and executor widths, then exit

SCENARIO OPTIONS:
    --algorithms LIST    restrict the algorithm matrix (comma-separated names)
                         [subset,superset-con,superset-agg,exact]
    --smoke              first two algorithms only, skip the cross-backend
                         determinism replay (fast CI gate)
    --out FILE           also write the expectation report to FILE
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn help_paths() {
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap_or_else(|e| e).contains("USAGE"));
    }

    #[test]
    fn list_names_everything() {
        let out = run(&argv("list")).unwrap();
        for needle in [
            "barnes",
            "specjbb",
            "specweb",
            "superset-agg",
            "sub2k",
            "exa8k",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn run_produces_stats() {
        let out = run(&argv(
            "run --workload specjbb --algorithm lazy --accesses 150 --seed 3",
        ))
        .unwrap();
        assert!(out.contains("snoops/read"), "{out}");
        assert!(out.contains("Lazy"), "{out}");
    }

    #[test]
    fn run_rejects_unknown_options() {
        let err = run(&argv("run --wrkload specjbb")).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
    }

    #[test]
    fn run_rejects_bad_names() {
        assert!(run(&argv("run --workload nope")).is_err());
        assert!(run(&argv("run --algorithm nope")).is_err());
        assert!(run(&argv("run --algorithm lazy --predictor sub2k")).is_err());
    }

    #[test]
    fn compare_emits_csv() {
        let out = run(&argv("compare --workload specjbb --accesses 120 --csv")).unwrap();
        assert!(out.lines().next().unwrap().starts_with("algorithm,"));
        assert!(out.contains("SupersetAgg,"));
    }

    #[test]
    fn timeline_walks_transactions() {
        let out = run(&argv(
            "timeline --workload specweb --algorithm lazy --accesses 60 --transactions 2",
        ))
        .unwrap();
        assert!(out.contains("issued at"), "{out}");
        assert!(out.contains("retired"), "{out}");
    }

    #[test]
    fn chaos_smoke_campaign_is_clean() {
        let out = run(&argv(
            "chaos --workload specjbb --schedules 2 --accesses 60 --nodes 4 --seed 5 --threads 2",
        ))
        .unwrap();
        assert!(out.contains("Chaos campaign"), "{out}");
        assert!(out.contains("CLEAN"), "{out}");
    }

    #[test]
    fn chaos_coverage_ratchet_roundtrip() {
        let dir = std::env::temp_dir().join("flexsnoop-cov-test");
        std::fs::create_dir_all(&dir).unwrap();
        let cov = dir.join("cov.txt").to_string_lossy().to_string();
        let out = run(&argv(&format!(
            "chaos --workload specjbb --schedules 2 --accesses 60 --nodes 4 --seed 5 \
             --threads 2 --coverage-out {cov}"
        )))
        .unwrap();
        assert!(out.contains("Fault coverage"), "{out}");
        let written = std::fs::read_to_string(&cov).unwrap();
        assert!(written.contains("drop "), "{written}");
        // Re-running against its own coverage as baseline must hold.
        let held = run(&argv(&format!(
            "chaos --workload specjbb --schedules 2 --accesses 60 --nodes 4 --seed 5 \
             --threads 2 --coverage-baseline {cov}"
        )))
        .unwrap();
        assert!(held.contains("ratchet"), "{held}");
        // A baseline proving a kind this campaign cannot draw must fail:
        // torus-only runs inject zero ring drops.
        let err = run(&argv(&format!(
            "chaos --workload specjbb --schedules 2 --accesses 60 --nodes 4 --seed 5 \
             --threads 2 --torus-only --coverage-baseline {cov}"
        )))
        .unwrap_err();
        assert!(err.contains("coverage regressed"), "{err}");
    }

    #[test]
    fn chaos_no_retry_reports_reproducer() {
        // Without recovery a lossy schedule eventually strands transactions;
        // the command still exits Ok (self-test mode) but names a reproducer.
        let out = run(&argv(
            "chaos --workload specjbb --schedules 6 --accesses 60 --nodes 4 --seed 1 \
             --no-retry --threads 2",
        ))
        .unwrap();
        assert!(out.contains("--no-retry"), "{out}");
    }

    #[test]
    fn scenario_builtins_run_clean_in_smoke_mode() {
        for name in flexsnoop_scenario::builtin_names() {
            let out = run(&argv(&format!("scenario run {name} --smoke --threads 2"))).unwrap();
            assert!(out.contains("CLEAN"), "{name}:\n{out}");
            assert!(out.contains("skipped (smoke)"), "{name}:\n{out}");
        }
        // The hierarchical builtin reports its shape.
        let out = run(&argv(
            "scenario run hierarchy-partition --smoke --threads 2",
        ))
        .unwrap();
        assert!(out.contains("hier:4x4"), "{out}");
    }

    #[test]
    fn scenario_runs_a_file_and_fails_failed_expectations() {
        let dir = std::env::temp_dir().join("flexsnoop-scn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("impossible.scn");
        // A real partition window with a zero-slack recovery deadline:
        // blocked requests time out after the heal, so this must fail.
        std::fs::write(
            &path,
            "name impossible\nnodes 8\nseed 42\n\
             phase migratory accesses=400 lines=64 hot=0.6 writes=0.5\n\
             partition 0-3|4-7 from=4000 until=12000\n\
             expect recovers-within 0\n",
        )
        .unwrap();
        let err = run(&argv(&format!(
            "scenario run {} --smoke --threads 2",
            path.display()
        )))
        .unwrap_err();
        assert!(err.contains("recovery not settled"), "{err}");
        assert!(err.contains("FAILURE"), "{err}");
    }

    #[test]
    fn scenario_rejects_unknown_names_and_empty_invocations() {
        let err = run(&argv("scenario run no-such-thing")).unwrap_err();
        assert!(err.contains("not a builtin"), "{err}");
        assert!(err.contains("partition-heal"), "{err}");
        let err = run(&argv("scenario")).unwrap_err();
        assert!(err.contains("builtins"), "{err}");
        let err = run(&argv("scenario run churn --algorithms bogus --smoke")).unwrap_err();
        assert!(err.contains("unknown algorithm"), "{err}");
    }

    #[test]
    fn chaos_rejects_zero_budget_and_zero_schedules() {
        let err = run(&argv("chaos --budget 0 --schedule 7")).unwrap_err();
        assert!(err.contains("--budget 0"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
        let err = run(&argv("chaos --schedules 0")).unwrap_err();
        assert!(err.contains("--schedules 0"), "{err}");
        assert!(err.contains("--schedule SEED"), "{err}");
    }

    #[test]
    fn serve_and_submit_round_trip_over_a_socket() {
        let sock = std::env::temp_dir().join(format!("flexsnoop-cli-{}.sock", std::process::id()));
        let sock_str = sock.to_string_lossy().to_string();
        let server = std::thread::spawn({
            let line = format!("serve --socket {sock_str}");
            move || run(&argv(&line))
        });
        while !sock.exists() {
            std::thread::yield_now();
        }
        let out = run(&argv(&format!(
            "submit --socket {sock_str} --workloads specjbb --algorithms lazy,eager \
             --seeds 3 --accesses 60"
        )))
        .unwrap();
        assert!(out.contains("\"event\": \"result\""), "{out}");
        assert!(out.contains("\"computed\": 2"), "{out}");
        let again = run(&argv(&format!(
            "submit --socket {sock_str} --workloads specjbb --algorithms lazy,eager \
             --seeds 3 --accesses 60"
        )))
        .unwrap();
        assert!(again.contains("\"cached\": 2"), "{again}");
        let down = run(&argv(&format!("submit --socket {sock_str} --shutdown"))).unwrap();
        assert!(down.contains("shut down"), "{down}");
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("2 sweeps"), "{summary}");
        assert!(summary.contains("2 cache hits"), "{summary}");
    }

    #[test]
    fn serve_self_check_passes() {
        let out = run(&argv("serve --self-check --threads 2")).unwrap();
        assert!(out.contains("cache determinism"), "{out}");
    }

    #[test]
    fn submit_requires_a_socket_and_matrix() {
        assert!(run(&argv("submit")).unwrap_err().contains("--socket"));
        assert!(run(&argv("submit --socket /tmp/x.sock"))
            .unwrap_err()
            .contains("--workloads"));
        assert!(run(&argv("serve")).unwrap_err().contains("--socket"));
    }

    #[test]
    fn run_with_predictor_fault_reports_injections() {
        let out = run(&argv(
            "run --workload specjbb --algorithm superset-agg --accesses 200 --seed 3 \
             --predictor-fault force-negative:2:50",
        ))
        .unwrap();
        assert!(out.contains("injected prediction faults"), "{out}");
        assert!(out.contains("invariant oracle"), "{out}");
    }

    #[test]
    fn predictor_fault_rejects_bad_specs() {
        assert!(run(&argv("run --predictor-fault bogus:2:5")).is_err());
        assert!(run(&argv("run --predictor-fault force-negative:0:5")).is_err());
        assert!(run(&argv("run --predictor-fault force-negative")).is_err());
    }

    #[test]
    fn hierarchical_run_localizes_circulations() {
        // The consolidated workload clustered at the local-ring size must
        // complete circulations in-ring; the identical flat run must not
        // even know the accounting.
        let hier = run(&argv(
            "run --workload consolidated --algorithm subset --accesses 150 --seed 3 \
             --topology hier:4x4 --cluster 4",
        ))
        .unwrap();
        assert!(hier.contains("Subset"), "{hier}");
        let flat = run(&argv(
            "run --workload consolidated --algorithm subset --accesses 150 --seed 3 \
             --nodes 16 --cluster 4",
        ))
        .unwrap();
        assert!(flat.contains("Subset"), "{flat}");
        assert_ne!(hier, flat, "topology must change the measured run");
    }

    #[test]
    fn chaos_accepts_a_hier_topology() {
        let out = run(&argv(
            "chaos --workload consolidated --schedules 2 --accesses 60 --seed 5 \
             --topology hier:2x4 --cluster 2 --threads 2",
        ))
        .unwrap();
        assert!(out.contains("CLEAN"), "{out}");
        assert!(out.contains("bridge drops"), "{out}");
    }

    #[test]
    fn scaled_run_works() {
        let out = run(&argv(
            "run --workload uniform --algorithm eager --accesses 150 --nodes 4",
        ))
        .unwrap();
        assert!(out.contains("Eager"), "{out}");
    }
}
