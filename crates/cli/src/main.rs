//! The `flexsnoop` command-line binary.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match flexsnoop_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
