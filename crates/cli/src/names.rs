//! Name ↔ type mappings for workloads, algorithms and predictors.
//!
//! The mappings themselves live in [`flexsnoop_serve::names`] — the sweep
//! service replays job specs from plain strings and needs them without
//! depending on the CLI. Re-exported here so `flexsnoop_cli::names::*`
//! keeps working.

pub use flexsnoop_serve::names::*;
