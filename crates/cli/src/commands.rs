//! Implementations of the CLI subcommands. Each returns the text to print
//! so the logic is fully testable without capturing stdout.

use flexsnoop::{
    energy_model_for, Algorithm, FaultInjectingPredictor, FaultKind, MachineConfig, RunStats,
    Simulator, SupplierPredictor, VecStream,
};
use flexsnoop_engine::snap::{self, SnapError, SnapReader, SnapWriter};
use flexsnoop_engine::Cycle;
use flexsnoop_metrics::Table;
use flexsnoop_workload::{profiles, AccessStream, Trace, WorkloadProfile};

use crate::args::Args;
use crate::names::{
    algorithm_names, parse_algorithm, parse_predictor, parse_workload, predictor_names,
};

/// `flexsnoop list`.
pub fn list() -> Result<String, String> {
    let mut out = String::from("workloads:\n");
    for p in profiles::all() {
        out.push_str(&format!(
            "  {:<12} {:>3} cores, {} ({} pools)\n",
            p.name,
            p.cores,
            p.group,
            p.pools.len()
        ));
    }
    out.push_str(
        "  uniform      (microbenchmark, sized by --nodes)\n  consolidated (clustered-sharing \
         server mix, sized by --nodes; pair with --topology hier and --cluster)\n\nalgorithms:\n",
    );
    for (name, _) in algorithm_names() {
        out.push_str(&format!("  {name}\n"));
    }
    out.push_str("\npredictors:\n");
    for (name, _) in predictor_names() {
        out.push_str(&format!("  {name}\n"));
    }
    Ok(out)
}

/// The workload named by `args`, with `--accesses` and `--cluster`
/// applied (`--cluster 0` keeps the profile's own sharing scope).
fn workload_for(args: &Args) -> Result<WorkloadProfile, String> {
    let mut workload = parse_workload(&args.workload, args.nodes)?.with_accesses(args.accesses);
    if args.cluster > 0 {
        workload = workload.with_cluster(args.cluster);
    }
    Ok(workload)
}

fn build_sim(args: &Args, algorithm: Algorithm) -> Result<Simulator, String> {
    let workload = workload_for(args)?;
    let predictor = parse_predictor(&args.predictor)?;
    match args.topology {
        Some((local, rings)) => {
            Simulator::for_workload_hier(&workload, algorithm, predictor, args.seed, local, rings)
        }
        None => Simulator::for_workload_on(&workload, algorithm, predictor, args.seed, args.nodes),
    }
}

fn stats_table(rows: &[(Algorithm, RunStats)], csv: bool) -> String {
    let mut table = Table::with_columns(&[
        "algorithm",
        "exec-cycles",
        "snoops/read",
        "hops/read",
        "energy-uJ",
        "supply-pct",
        "collisions",
    ]);
    for (alg, s) in rows {
        table.row(vec![
            alg.to_string(),
            s.exec_cycles.as_u64().to_string(),
            format!("{:.2}", s.snoops_per_read()),
            format!("{:.2}", s.ring_hops_per_read()),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.1}", s.cache_supply_fraction() * 100.0),
            s.collisions.to_string(),
        ]);
    }
    if csv {
        table.to_csv()
    } else {
        table.render()
    }
}

/// Parses `--predictor-fault kind:period:budget` (e.g.
/// `force-negative:3:5`: flip every 3rd prediction negative, 5 times).
fn parse_predictor_fault(spec: &str) -> Result<(FaultKind, u64, u64), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [kind, period, budget] = parts.as_slice() else {
        return Err(format!(
            "--predictor-fault expects kind:period:budget, got {spec:?}"
        ));
    };
    let kind = match *kind {
        "force-negative" | "negative" => FaultKind::ForceNegative,
        "force-positive" | "positive" => FaultKind::ForcePositive,
        other => {
            return Err(format!(
                "unknown fault kind {other:?}; use force-negative or force-positive"
            ))
        }
    };
    let num = |what: &str, v: &str| -> Result<u64, String> {
        v.parse::<u64>()
            .map_err(|_| format!("--predictor-fault {what} expects a number, got {v:?}"))
    };
    let period = num("period", period)?;
    if period == 0 {
        return Err("--predictor-fault period must be positive".to_string());
    }
    Ok((kind, period, num("budget", budget)?))
}

/// Builds a simulator whose per-node predictors are wrapped in
/// [`FaultInjectingPredictor`]s (the §4.3.4 hardware-race study).
fn build_faulted_sim(
    args: &Args,
    algorithm: Algorithm,
    kind: FaultKind,
    period: u64,
    budget: u64,
) -> Result<Simulator, String> {
    let workload = workload_for(args)?;
    if args.nodes == 0 || !workload.cores.is_multiple_of(args.nodes) {
        return Err(format!(
            "workload cores ({}) must be a multiple of {} nodes",
            workload.cores, args.nodes
        ));
    }
    let spec = parse_predictor(&args.predictor)?.unwrap_or_else(|| algorithm.default_predictor());
    if !algorithm.accepts_predictor(&spec) {
        return Err(format!("algorithm {algorithm} cannot use predictor {spec}"));
    }
    let mut machine = MachineConfig {
        nodes: args.nodes,
        ..MachineConfig::isca2006(workload.cores / args.nodes)
    };
    if let Some((local, rings)) = args.topology {
        machine.ring.hier = Some(flexsnoop::default_hier(local, rings));
    }
    let energy = energy_model_for(&spec);
    let streams: Vec<Box<dyn AccessStream + Send>> = workload
        .streams(args.seed)
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
        .collect();
    let predictors: Vec<Box<dyn SupplierPredictor + Send>> = (0..machine.nodes)
        .map(|_| {
            Box::new(FaultInjectingPredictor::new(
                spec.build(),
                kind,
                period,
                budget,
            )) as Box<dyn SupplierPredictor + Send>
        })
        .collect();
    Simulator::with_predictors(
        machine,
        algorithm,
        predictors,
        energy,
        streams,
        workload.accesses_per_core,
    )
}

/// A `run` checkpoint file: a sealed envelope embedding the run
/// parameters (so `--resume` can rebuild the identical simulator from
/// nothing but the file) followed by the simulator snapshot itself.
fn write_checkpoint(args: &Args, sim: &mut Simulator) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_str("run");
    w.put_str(&args.workload);
    w.put_str(&args.algorithm);
    w.put_str(&args.predictor);
    w.put_u64(args.seed);
    w.put_usize(args.nodes);
    w.put_u64(args.accesses);
    // Topology: `0 x 0` encodes the flat ring.
    let (local, rings) = args.topology.unwrap_or((0, 0));
    w.put_usize(local);
    w.put_usize(rings);
    w.put_usize(args.cluster);
    w.put_bytes(&sim.save_snapshot());
    snap::seal(w.into_bytes())
}

fn snap_err(what: &str, e: SnapError) -> String {
    format!("{what}: {e}")
}

/// `flexsnoop run --resume FILE`: rebuilds the simulator from the run
/// parameters embedded in the checkpoint, restores the saved state and
/// runs it to completion. The resumed run's statistics are bit-identical
/// to the uninterrupted run's.
fn resume_run(args: &Args) -> Result<String, String> {
    let bytes = std::fs::read(&args.resume).map_err(|e| format!("read {}: {e}", args.resume))?;
    let bad = |e| snap_err("bad checkpoint file", e);
    let payload = snap::unseal(&bytes).map_err(bad)?;
    let mut r = SnapReader::new(payload);
    let kind = r.get_str().map_err(bad)?;
    if kind != "run" {
        return Err(format!(
            "{} is not a `flexsnoop run` checkpoint (kind {kind:?})",
            args.resume
        ));
    }
    let mut rargs = args.clone();
    rargs.workload = r.get_str().map_err(bad)?;
    rargs.algorithm = r.get_str().map_err(bad)?;
    rargs.predictor = r.get_str().map_err(bad)?;
    rargs.seed = r.get_u64().map_err(bad)?;
    rargs.nodes = r.get_usize().map_err(bad)?;
    rargs.accesses = r.get_u64().map_err(bad)?;
    let (local, rings) = (r.get_usize().map_err(bad)?, r.get_usize().map_err(bad)?);
    rargs.topology = (local > 0 && rings > 0).then_some((local, rings));
    rargs.cluster = r.get_usize().map_err(bad)?;
    let snapshot = r.get_bytes().map_err(bad)?.to_vec();
    r.expect_eof().map_err(bad)?;
    let algorithm = parse_algorithm(&rargs.algorithm)?;
    let mut sim = build_sim(&rargs, algorithm)?;
    sim.restore_snapshot(&snapshot)
        .map_err(|e| snap_err("checkpoint does not match this configuration", e))?;
    sim.run_until(None);
    let stats = sim.finalize();
    sim.validate_coherence()?;
    let mut out = format!(
        "resumed {} ({} / {} / seed {} / {} nodes / {} accesses)\n",
        args.resume, rargs.workload, rargs.algorithm, rargs.seed, rargs.nodes, rargs.accesses
    );
    out.push_str(&stats_table(&[(algorithm, stats)], args.csv));
    Ok(out)
}

/// `flexsnoop run`.
pub fn run_one(args: &Args) -> Result<String, String> {
    if !args.resume.is_empty() {
        if args.save_at.is_some() || !args.predictor_fault.is_empty() {
            return Err(
                "--resume cannot be combined with --save-at or --predictor-fault".to_string(),
            );
        }
        return resume_run(args);
    }
    if args.save_at.is_some() && !args.predictor_fault.is_empty() {
        return Err("--save-at is not supported with --predictor-fault".to_string());
    }
    let algorithm = parse_algorithm(&args.algorithm)?;
    if args.predictor_fault.is_empty() {
        let mut sim = build_sim(args, algorithm)?;
        if let Some(at) = args.save_at {
            if args.snapshot.is_empty() {
                return Err("--save-at needs --snapshot FILE".to_string());
            }
            let reached = sim.run_until(Some(Cycle::new(at)));
            let bytes = write_checkpoint(args, &mut sim);
            std::fs::write(&args.snapshot, &bytes)
                .map_err(|e| format!("write {}: {e}", args.snapshot))?;
            let mut out = format!(
                "checkpointed cycle {reached} to {} ({} bytes); continuing to completion\n",
                args.snapshot,
                bytes.len()
            );
            sim.run_until(None);
            let stats = sim.finalize();
            sim.validate_coherence()?;
            out.push_str(&stats_table(&[(algorithm, stats)], args.csv));
            return Ok(out);
        }
        let stats = sim.run();
        sim.validate_coherence()?;
        return Ok(stats_table(&[(algorithm, stats)], args.csv));
    }
    // Fault-injection mode: corrupted predictions can break coherence by
    // design, so the invariant oracle records violations instead of the
    // final sweep erroring out.
    let (kind, period, budget) = parse_predictor_fault(&args.predictor_fault)?;
    let mut sim = build_faulted_sim(args, algorithm, kind, period, budget)?;
    sim.enable_invariant_checks();
    let stats = sim.run();
    let mut out = stats_table(&[(algorithm, stats.clone())], args.csv);
    out.push_str(&format!(
        "\ninjected prediction faults: {}\n",
        stats.robustness.injected_prediction_faults
    ));
    match sim.violations().len() {
        0 => out.push_str("invariant oracle: clean\n"),
        n => out.push_str(&format!(
            "invariant oracle: {n} violation(s); first: {}\n",
            sim.first_violation().expect("n > 0")
        )),
    }
    Ok(out)
}

/// `flexsnoop compare`.
pub fn compare(args: &Args) -> Result<String, String> {
    // One bounded pool for all seven runs (each is deterministic, so the
    // row values do not depend on the worker count or `--threads`).
    let tasks: Vec<_> = Algorithm::PAPER_SET
        .into_iter()
        .map(|algorithm| {
            move || -> Result<(Algorithm, RunStats), String> {
                let mut sim = build_sim(args, algorithm)?;
                let stats = sim.run();
                sim.validate_coherence()?;
                Ok((algorithm, stats))
            }
        })
        .collect();
    let rows = flexsnoop_engine::Executor::with_default()
        .run(tasks)
        .into_iter()
        .collect::<Result<Vec<_>, String>>()?;
    Ok(stats_table(&rows, args.csv))
}

/// `flexsnoop timeline`.
pub fn timeline(args: &Args) -> Result<String, String> {
    let algorithm = parse_algorithm(&args.algorithm)?;
    let mut sim = build_sim(args, algorithm)?;
    sim.enable_timeline(args.transactions);
    sim.run();
    let mut out = String::new();
    for txn in sim.timeline().transactions().collect::<Vec<_>>() {
        out.push_str(&sim.timeline().render(txn));
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("no ring transactions occurred\n");
    }
    Ok(out)
}

fn record_trace(workload: &WorkloadProfile, accesses: u64, seed: u64) -> Trace {
    let mut streams = workload.streams(seed);
    Trace::record(&mut streams, accesses)
}

/// `flexsnoop trace`.
pub fn trace(args: &Args) -> Result<String, String> {
    let mut workload = parse_workload(&args.workload, args.nodes)?;
    if args.cluster > 0 {
        workload = workload.with_cluster(args.cluster);
    }
    let trace = record_trace(&workload, args.accesses, args.seed);
    let text = trace.to_text();
    if args.out.is_empty() {
        Ok(text)
    } else {
        std::fs::write(&args.out, &text).map_err(|e| format!("write {}: {e}", args.out))?;
        Ok(format!(
            "wrote {} accesses x {} cores to {}\n",
            args.accesses,
            trace.cores(),
            args.out
        ))
    }
}

/// `flexsnoop replay`.
pub fn replay(args: &Args) -> Result<String, String> {
    if args.trace.is_empty() {
        return Err("replay needs --trace FILE".to_string());
    }
    let text =
        std::fs::read_to_string(&args.trace).map_err(|e| format!("read {}: {e}", args.trace))?;
    let trace: Trace = text.parse()?;
    let algorithm = parse_algorithm(&args.algorithm)?;
    if !trace.cores().is_multiple_of(args.nodes) {
        return Err(format!(
            "trace has {} cores, not a multiple of {} nodes",
            trace.cores(),
            args.nodes
        ));
    }
    let mut machine = flexsnoop::MachineConfig {
        nodes: args.nodes,
        ..flexsnoop::MachineConfig::isca2006(trace.cores() / args.nodes)
    };
    if let Some((local, rings)) = args.topology {
        machine.ring.hier = Some(flexsnoop::default_hier(local, rings));
    }
    let limit = (0..trace.cores())
        .map(|c| trace.core(c).len() as u64)
        .max()
        .unwrap_or(1);
    let streams: Vec<Box<dyn AccessStream + Send>> = VecStream::from_trace(&trace)
        .into_iter()
        .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
        .collect();
    let predictor =
        parse_predictor(&args.predictor)?.unwrap_or_else(|| algorithm.default_predictor());
    let mut sim = Simulator::new(
        machine,
        algorithm,
        predictor,
        energy_model_for(&predictor),
        streams,
        limit.max(1),
    )?;
    let stats = sim.run();
    sim.validate_coherence()?;
    Ok(stats_table(&[(algorithm, stats)], args.csv))
}

/// `flexsnoop directory`: the §2.1.2 baseline on the same workload.
pub fn directory(args: &Args) -> Result<String, String> {
    let workload = workload_for(args)?;
    let mut sim =
        flexsnoop_directory::DirSimulator::for_workload(&workload, args.seed, args.nodes)?;
    let s = sim.run();
    sim.validate_coherence()?;
    let mut table = Table::with_columns(&[
        "protocol",
        "exec-cycles",
        "2hop-reads",
        "3hop-reads",
        "invals",
        "energy-uJ",
        "conflicts",
    ]);
    table.row(vec![
        "directory".into(),
        s.exec_cycles.as_u64().to_string(),
        s.reads_two_hop.to_string(),
        s.reads_three_hop.to_string(),
        s.invalidations.to_string(),
        format!("{:.1}", s.energy_nj() / 1000.0),
        s.home_conflicts.to_string(),
    ]);
    Ok(if args.csv {
        table.to_csv()
    } else {
        table.render()
    })
}

/// `flexsnoop report`: the one-command paper-figure reproduction pipeline.
///
/// Runs the Figure 6–11 and Table 1/3 sweep matrix, then either writes
/// `report.md` plus the `bench_*.json` artifacts (default) or, with
/// `--check`, compares the regenerated report against the committed copy
/// and fails if it is stale. `--via-serve` routes the figure matrix
/// through the sweep service's scheduler and results cache
/// (`--cache-dir` persists it across runs); everything outside the
/// artifacts' volatile lines is byte-identical to a direct run, so
/// `--check --via-serve` never reports false staleness.
pub fn report(args: &Args) -> Result<String, String> {
    let mut opts = if args.smoke {
        flexsnoop_report::ReportOptions::smoke()
    } else {
        flexsnoop_report::ReportOptions::full()
    };
    opts.probe = args.probe;
    opts.via_serve = args.via_serve;
    if !args.cache_dir.is_empty() {
        if !args.via_serve {
            return Err("--cache-dir on report requires --via-serve".to_string());
        }
        opts.serve_cache = Some(std::path::PathBuf::from(&args.cache_dir));
    }
    if !args.out.is_empty() {
        opts.out_dir = std::path::PathBuf::from(&args.out);
    }
    report_with(&opts, args.check)
}

fn report_with(opts: &flexsnoop_report::ReportOptions, check: bool) -> Result<String, String> {
    let generated = flexsnoop_report::generate(opts);
    if check {
        generated.check(&opts.out_dir)?;
        Ok(format!(
            "{} is up to date\n\n{}",
            opts.out_dir.join("report.md").display(),
            generated.summary
        ))
    } else {
        generated.write(&opts.out_dir)?;
        let mut out = format!("wrote {}\n", opts.out_dir.join("report.md").display());
        for artifact in &generated.artifacts {
            out.push_str(&format!(
                "wrote {}\n",
                opts.out_dir.join(&artifact.filename).display()
            ));
        }
        out.push('\n');
        out.push_str(&generated.summary);
        Ok(out)
    }
}

/// `flexsnoop bench --scale`: the ring-scaling sweep (1k → 1M nodes),
/// writing the versioned `results/bench_scale.json` artifact.
pub fn bench(args: &Args) -> Result<String, String> {
    if !args.scale {
        return Err("bench currently requires --scale (the ring-scaling sweep)".to_string());
    }
    let mut opts = flexsnoop_report::scale::ScaleOptions {
        max_nodes: args.max_nodes,
        ..flexsnoop_report::scale::ScaleOptions::default()
    };
    if !args.out.is_empty() {
        opts.out_dir = std::path::PathBuf::from(&args.out);
    }
    let report = flexsnoop_report::scale::run_scale(&opts);
    report.write(&opts.out_dir)?;
    Ok(format!(
        "{}\nwrote {}\n",
        report.summary,
        opts.out_dir.join(&report.artifact.filename).display()
    ))
}

/// `flexsnoop serve`: host the sweep service on a Unix socket (or run
/// the cache-determinism self-check with `--self-check`).
///
/// Blocks until a client sends `shutdown`, then reports what was served.
pub fn serve(args: &Args) -> Result<String, String> {
    if args.self_check {
        return flexsnoop_checker::cachecheck::self_check(args.threads);
    }
    if args.socket.is_empty() {
        return Err("serve needs --socket PATH (or --self-check)".to_string());
    }
    let cache = if args.cache_dir.is_empty() {
        flexsnoop_serve::ResultsCache::in_memory()
    } else {
        flexsnoop_serve::ResultsCache::persistent(&args.cache_dir)
            .map_err(|e| format!("cache dir {}: {e}", args.cache_dir))?
    };
    let options = flexsnoop_serve::ServiceOptions {
        threads: args.threads,
        ..flexsnoop_serve::ServiceOptions::default()
    };
    let service = flexsnoop_serve::SweepService::new(options, cache);
    let summary = flexsnoop_serve::serve_blocking(std::path::Path::new(&args.socket), &service)?;
    let stats = service.stats();
    Ok(format!(
        "served {} connections ({} sweeps, {} jobs): {} executed, {} cache hits, \
         {} coalesced, {} failed, {} client disconnects\n",
        summary.connections,
        summary.sweeps,
        summary.jobs,
        stats.executed,
        stats.cache.hits,
        stats.coalesced,
        stats.failed,
        summary.disconnects,
    ))
}

/// `flexsnoop submit`: send one sweep (or a shutdown) to a serving
/// socket and return the streamed NDJSON response.
pub fn submit(args: &Args) -> Result<String, String> {
    if args.socket.is_empty() {
        return Err("submit needs --socket PATH".to_string());
    }
    let path = std::path::Path::new(&args.socket);
    if args.shutdown {
        flexsnoop_serve::request_shutdown(path)?;
        return Ok("server shut down\n".to_string());
    }
    if args.workloads.is_empty() || args.algorithms.is_empty() {
        return Err("submit needs --workloads and --algorithms (or --shutdown)".to_string());
    }
    let seeds = if args.seeds.is_empty() {
        vec![args.seed]
    } else {
        args.seeds
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<u64>()
                    .map_err(|_| format!("--seeds expects numbers, got {s:?}"))
            })
            .collect::<Result<_, _>>()?
    };
    let request = flexsnoop_serve::SweepRequest {
        workloads: split_names(&args.workloads),
        algorithms: split_names(&args.algorithms),
        predictor: args.predictor.clone(),
        seeds,
        nodes: args.nodes,
        accesses: args.accesses,
        probe: args.probe,
    };
    flexsnoop_serve::request(path, &request.render_line())
}

fn split_names(list: &str) -> Vec<String> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// `flexsnoop chaos`: the seeded unreliable-ring campaign
/// (see `flexsnoop_checker::chaos`).
pub fn chaos(args: &Args) -> Result<String, String> {
    if args.budget == Some(0) {
        return Err(
            "--budget 0 disarms every fault in the plan; a reproducer needs a budget of \
             at least 1 (omit --budget to keep the schedule's own)"
                .to_string(),
        );
    }
    if args.schedules == 0 && args.schedule.is_none() {
        return Err(
            "--schedules 0 draws no fault schedules; give --schedules N (N >= 1) or pin \
             one with --schedule SEED"
                .to_string(),
        );
    }
    let mut workload = parse_workload(&args.workload, args.nodes)?;
    if args.cluster > 0 {
        workload = workload.with_cluster(args.cluster);
    }
    let defaults = flexsnoop_checker::ChaosOptions::default();
    let opts = flexsnoop_checker::ChaosOptions {
        schedules: args.schedules,
        base_seed: args.seed,
        // `run`'s 4000-access default would make a 40-schedule campaign
        // crawl; chaos has its own scale unless --accesses is explicit.
        accesses_per_core: if args.accesses_explicit {
            args.accesses
        } else {
            defaults.accesses_per_core
        },
        nodes: args.nodes,
        threads: if args.threads > 0 {
            args.threads
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        },
        recovery: !args.no_retry,
        schedule: args.schedule,
        budget: args.budget,
        torus_only: args.torus_only,
        hier: args.topology,
        timeout_policy: args
            .static_timeouts
            .then_some(flexsnoop::TimeoutPolicy::Static),
        ..defaults
    };
    let report = flexsnoop_checker::run_chaos(&workload, &opts)?;
    let mut text = report.render();
    if !args.out.is_empty() {
        std::fs::write(&args.out, &text).map_err(|e| format!("write {}: {e}", args.out))?;
    }
    if !args.coverage_out.is_empty() {
        std::fs::write(&args.coverage_out, report.coverage.render_baseline())
            .map_err(|e| format!("write {}: {e}", args.coverage_out))?;
    }
    // The coverage ratchet: every fault kind the checked-in baseline
    // proved reachable must still inject at least one event.
    if !args.coverage_baseline.is_empty() {
        let baseline_text = std::fs::read_to_string(&args.coverage_baseline)
            .map_err(|e| format!("read {}: {e}", args.coverage_baseline))?;
        let baseline = flexsnoop_checker::ChaosCoverage::parse_baseline(&baseline_text)?;
        let regressions = report.coverage.regressions(&baseline);
        if !regressions.is_empty() {
            return Err(format!(
                "fault coverage regressed against {}:\n{}\n\n{text}",
                args.coverage_baseline,
                regressions.join("\n")
            ));
        }
        text.push_str(&format!(
            "- fault coverage ratchet vs {}: held\n",
            args.coverage_baseline
        ));
    }
    if report.is_clean() || args.no_retry {
        // --no-retry failures are the self-test's expected outcome.
        Ok(text)
    } else {
        Err(text)
    }
}

/// `flexsnoop scenario run <builtin|file>`.
pub fn scenario(args: &Args) -> Result<String, String> {
    if args.scenario.is_empty() {
        return Err(format!(
            "scenario run needs a builtin name or a scenario file; builtins: {}",
            flexsnoop_scenario::builtin_names().join(", ")
        ));
    }
    let spec = match flexsnoop_scenario::builtin(&args.scenario) {
        Some(s) => s,
        None => {
            let path = std::path::Path::new(&args.scenario);
            let text = std::fs::read_to_string(path).map_err(|e| {
                format!(
                    "{:?} is not a builtin scenario ({}) and not a readable file: {e}",
                    args.scenario,
                    flexsnoop_scenario::builtin_names().join(", ")
                )
            })?;
            // Trace phases name files relative to the scenario file.
            let dir = path
                .parent()
                .map(std::path::Path::to_path_buf)
                .unwrap_or_default();
            flexsnoop_scenario::Scenario::parse_with(&text, &mut |trace_path| {
                std::fs::read_to_string(dir.join(trace_path))
                    .map_err(|e| format!("cannot read trace file {trace_path:?}: {e}"))
            })
            .map_err(|e| format!("{}: {e}", args.scenario))?
        }
    };
    let algorithms = if args.algorithms.is_empty() {
        flexsnoop_scenario::default_algorithms().to_vec()
    } else {
        let mut parsed = Vec::new();
        for name in args.algorithms.split(',').filter(|s| !s.is_empty()) {
            parsed.push(parse_algorithm(name)?);
        }
        parsed
    };
    let opts = flexsnoop_scenario::RunOptions {
        algorithms,
        smoke: args.smoke,
        threads: if args.threads > 0 {
            args.threads
        } else {
            flexsnoop_scenario::RunOptions::default().threads
        },
    };
    let report = flexsnoop_scenario::run_scenario(&spec, &opts)?;
    let text = report.render();
    if !args.out.is_empty() {
        std::fs::write(&args.out, &text).map_err(|e| format!("write {}: {e}", args.out))?;
    }
    // A failed expectation is a non-zero exit: CI gates on it.
    if report.is_clean() {
        Ok(text)
    } else {
        Err(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;

    fn base_args() -> Args {
        Args {
            command: Command::Run,
            workload: "specjbb".to_string(),
            accesses: 120,
            seed: 5,
            ..Args::default()
        }
    }

    #[test]
    fn run_and_compare_share_format() {
        let run = run_one(&base_args()).unwrap();
        let cmp = compare(&base_args()).unwrap();
        let header = run.lines().next().unwrap().to_string();
        assert_eq!(cmp.lines().next().unwrap(), header);
        assert_eq!(cmp.lines().count(), 2 + Algorithm::PAPER_SET.len());
    }

    #[test]
    fn trace_then_replay_roundtrip() {
        let dir = std::env::temp_dir().join("flexsnoop-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt").to_string_lossy().to_string();
        let mut args = base_args();
        args.out = path.clone();
        args.accesses = 80;
        let msg = trace(&args).unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        let mut rargs = base_args();
        rargs.trace = path;
        rargs.algorithm = "lazy".to_string();
        let out = replay(&rargs).unwrap();
        assert!(out.contains("Lazy"), "{out}");
    }

    #[test]
    fn checkpoint_save_then_resume_matches_uninterrupted_run() {
        let dir = std::env::temp_dir().join("flexsnoop-cli-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("state.snap").to_string_lossy().to_string();

        let baseline = run_one(&base_args()).unwrap();

        // Saving mid-run must not perturb the donor run…
        let mut save = base_args();
        save.save_at = Some(3_000);
        save.snapshot = file.clone();
        let saved = run_one(&save).unwrap();
        assert!(saved.contains("checkpointed cycle"), "{saved}");
        assert!(
            saved.ends_with(&baseline),
            "saving perturbed the donor run:\n{saved}\nvs\n{baseline}"
        );

        // …and the resumed run is bit-identical to the uninterrupted one.
        let mut resume = base_args();
        resume.resume = file.clone();
        let resumed = run_one(&resume).unwrap();
        assert!(resumed.contains("resumed"), "{resumed}");
        assert!(
            resumed.ends_with(&baseline),
            "resumed stats diverged:\n{resumed}\nvs\n{baseline}"
        );

        // A tampered checkpoint fails loudly, not with garbage stats.
        let mut bytes = std::fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let bad_file = dir.join("bad.snap").to_string_lossy().to_string();
        std::fs::write(&bad_file, &bytes).unwrap();
        let mut bad = base_args();
        bad.resume = bad_file;
        assert!(run_one(&bad).unwrap_err().contains("checkpoint"));
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        let mut no_file = base_args();
        no_file.save_at = Some(10);
        assert!(run_one(&no_file).unwrap_err().contains("--snapshot"));

        let mut both = base_args();
        both.resume = "state.snap".to_string();
        both.save_at = Some(10);
        assert!(run_one(&both).unwrap_err().contains("--resume"));

        let mut faulted = base_args();
        faulted.save_at = Some(10);
        faulted.snapshot = "state.snap".to_string();
        faulted.predictor_fault = "force-negative:2:5".to_string();
        assert!(run_one(&faulted).unwrap_err().contains("--predictor-fault"));
    }

    #[test]
    fn directory_command_runs() {
        let out = directory(&base_args()).unwrap();
        assert!(out.contains("directory"), "{out}");
        assert!(out.contains("2hop-reads"), "{out}");
    }

    #[test]
    fn replay_requires_trace_file() {
        assert!(replay(&base_args()).unwrap_err().contains("--trace"));
    }

    #[test]
    fn bench_requires_scale_flag() {
        let mut args = base_args();
        args.command = Command::Bench;
        assert!(bench(&args).unwrap_err().contains("--scale"));
    }

    #[test]
    fn report_write_then_check_roundtrip() {
        // A tiny matrix keeps this test fast in debug builds; the report
        // crate's own tests cover the full section set.
        let workloads: Vec<_> = profiles::all()
            .into_iter()
            .filter(|p| p.name == "specjbb")
            .collect();
        assert_eq!(workloads.len(), 1);
        let dir = std::env::temp_dir().join("flexsnoop-cli-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = flexsnoop_report::ReportOptions {
            scale: flexsnoop_report::ReportScale {
                figure_accesses: 60,
                table1_accesses: 60,
                table3_accesses: 60,
            },
            probe: true,
            out_dir: dir.clone(),
            workloads: Some(workloads),
            ..flexsnoop_report::ReportOptions::smoke()
        };
        let wrote = report_with(&opts, false).unwrap();
        assert!(wrote.contains("report.md"), "{wrote}");
        assert!(wrote.contains("bench_fig6.json"), "{wrote}");
        let checked = report_with(&opts, true).unwrap();
        assert!(checked.contains("up to date"), "{checked}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_cache_dir_requires_via_serve() {
        let args = Args {
            command: Command::Report,
            cache_dir: "results/cache".to_string(),
            ..Args::default()
        };
        let err = report(&args).unwrap_err();
        assert!(err.contains("--via-serve"), "{err}");
    }

    #[test]
    fn report_check_flags_missing_report() {
        let dir = std::env::temp_dir().join("flexsnoop-cli-report-missing");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = flexsnoop_report::ReportOptions {
            scale: flexsnoop_report::ReportScale {
                figure_accesses: 60,
                table1_accesses: 60,
                table3_accesses: 60,
            },
            probe: false,
            out_dir: dir,
            via_serve: false,
            serve_cache: None,
            workloads: Some(
                profiles::all()
                    .into_iter()
                    .filter(|p| p.name == "specjbb")
                    .collect(),
            ),
        };
        let err = report_with(&opts, true).unwrap_err();
        assert!(err.contains("report.md"), "{err}");
    }

    #[test]
    fn trace_without_out_prints_text() {
        let mut args = base_args();
        args.accesses = 5;
        let text = trace(&args).unwrap();
        assert!(text.lines().count() >= 5);
        assert!(text.lines().all(|l| l.split_whitespace().count() == 4));
    }
}
