//! Hand-rolled `--key value` argument parsing.

/// The subcommand to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// List workloads, algorithms, predictors.
    List,
    /// One (workload, algorithm) run.
    Run,
    /// Every paper algorithm on one workload.
    Compare,
    /// Per-transaction event walkthrough.
    Timeline,
    /// Record a trace to a file.
    Trace,
    /// Replay a recorded trace.
    Replay,
    /// Run the directory-protocol baseline on one workload.
    Directory,
    /// Regenerate the paper-figure report and JSON artifacts.
    Report,
    /// Throughput/memory benchmarks (`--scale`: the ring-scaling sweep).
    Bench,
    /// Seeded unreliable-ring chaos campaign.
    Chaos,
    /// Host the sweep service on a Unix socket.
    Serve,
    /// Submit a request line to a serving socket.
    Submit,
    /// Run a declarative robustness scenario (builtin or file).
    Scenario,
    /// Print usage.
    Help,
}

/// Parsed command-line arguments with defaults applied.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand.
    pub command: Command,
    /// `--workload` (profile name).
    pub workload: String,
    /// `--algorithm`.
    pub algorithm: String,
    /// `--predictor` (empty = the algorithm's default).
    pub predictor: String,
    /// `--accesses` per core.
    pub accesses: u64,
    /// `--seed`.
    pub seed: u64,
    /// `--nodes` on the ring.
    pub nodes: usize,
    /// `--transactions` for `timeline`.
    pub transactions: usize,
    /// `--trace` input file for `replay`.
    pub trace: String,
    /// `--out` output file for `trace`.
    pub out: String,
    /// `--csv` flag.
    pub csv: bool,
    /// `--smoke` flag for `report`: the fast scale the committed
    /// `results/report.md` is generated at.
    pub smoke: bool,
    /// `--probe` flag for `report`: attach observability counters to the
    /// JSON artifacts.
    pub probe: bool,
    /// `--check` flag for `report`: compare against the committed report
    /// instead of writing.
    pub check: bool,
    /// `--threads` worker-pool size for parallel sweeps (0 = auto: the
    /// machine's available parallelism).
    pub threads: usize,
    /// Whether `--accesses` was given explicitly (subcommands with a
    /// different natural scale, like `chaos`, use their own default
    /// otherwise).
    pub accesses_explicit: bool,
    /// `--schedules` for `chaos`: randomized fault schedules to draw.
    pub schedules: u64,
    /// `--schedule` for `chaos`: pin one schedule seed (reproducer mode).
    pub schedule: Option<u64>,
    /// `--budget` for `chaos`: override the plan's fault budget (replay
    /// a shrunk reproducer).
    pub budget: Option<u64>,
    /// `--no-retry` for `chaos`: disable timeout/retry recovery (the
    /// campaign's self-test; faults must then strand transactions).
    pub no_retry: bool,
    /// `--predictor-fault kind:period:budget` for `run`: wrap every
    /// node's predictor in a fault injector (§4.3.4 studies).
    pub predictor_fault: String,
    /// `--torus-only` for `chaos`: strip ring faults from every drawn
    /// plan and fault only torus data legs.
    pub torus_only: bool,
    /// `--static-timeouts` for `chaos`: replay the pre-EWMA fixed-slack
    /// requester timeouts (A/B against the adaptive default).
    pub static_timeouts: bool,
    /// `--coverage-baseline FILE` for `chaos`: fail when a fault kind
    /// with a nonzero injected count in FILE records zero draws now.
    pub coverage_baseline: String,
    /// `--coverage-out FILE` for `chaos`: write the per-kind injected
    /// counts in the baseline format (the CI ratchet artifact).
    pub coverage_out: String,
    /// `--scale` flag for `bench`: run the ring-scaling sweep.
    pub scale: bool,
    /// `--max-nodes` for `bench --scale`: skip sweep points above this
    /// ring size (the CI smoke job caps at 131072).
    pub max_nodes: usize,
    /// `--save-at CYCLE` for `run`: checkpoint the simulation state at
    /// the given cycle (requires `--snapshot`); the run then continues
    /// to completion (saving is a semantic no-op on the live run).
    pub save_at: Option<u64>,
    /// `--snapshot FILE` for `run --save-at`: where the checkpoint is
    /// written.
    pub snapshot: String,
    /// `--resume FILE` for `run`: restore a checkpoint written by
    /// `--save-at` and run it to completion. The run parameters
    /// (workload, algorithm, predictor, seed, nodes, accesses) are
    /// embedded in the file; command-line overrides are rejected by the
    /// configuration fingerprint if they disagree.
    pub resume: String,
    /// `--socket PATH` for `serve`/`submit`: the Unix socket the service
    /// listens on.
    pub socket: String,
    /// `--cache-dir DIR` for `serve`: persist the results cache here
    /// (in-memory only when empty).
    pub cache_dir: String,
    /// `--workloads LIST` for `submit`: comma-separated workload names.
    pub workloads: String,
    /// `--algorithms LIST` for `submit`: comma-separated algorithm names.
    pub algorithms: String,
    /// `--seeds LIST` for `submit`: comma-separated seeds.
    pub seeds: String,
    /// `--shutdown` for `submit`: stop the server instead of sweeping.
    pub shutdown: bool,
    /// `--self-check` for `serve`: run the cache-determinism cross-check
    /// (checker crate) instead of listening.
    pub self_check: bool,
    /// `--via-serve` for `report`: route the figure matrix through the
    /// sweep service's scheduler and results cache.
    pub via_serve: bool,
    /// Positional scenario name or file for `scenario run`.
    pub scenario: String,
    /// `--cluster N`: scope the workload's shared pools to clusters of N
    /// consecutive cores (0 = the profile's own scope). Pairing N with a
    /// `hier` topology's local-ring size pins each instance's sharing
    /// inside one ring.
    pub cluster: usize,
    /// `--topology flat|hier:<local>x<rings>`: `None` is the flat ring,
    /// `Some((local, rings))` groups the nodes into `rings` local rings
    /// of `local` nodes joined by bridges on a global ring. A `hier`
    /// topology fixes the node count to `local × rings`; an explicit
    /// `--nodes` must agree.
    pub topology: Option<(usize, usize)>,
    /// Whether `--nodes` was given explicitly (used to reconcile with
    /// `--topology`, which implies its own node count).
    pub nodes_explicit: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            command: Command::Help,
            workload: "specweb".to_string(),
            algorithm: "superset-agg".to_string(),
            predictor: String::new(),
            accesses: 4_000,
            seed: 42,
            nodes: 8,
            transactions: 3,
            trace: String::new(),
            out: String::new(),
            csv: false,
            smoke: false,
            probe: false,
            check: false,
            threads: 0,
            accesses_explicit: false,
            schedules: 40,
            schedule: None,
            budget: None,
            no_retry: false,
            predictor_fault: String::new(),
            torus_only: false,
            static_timeouts: false,
            coverage_baseline: String::new(),
            coverage_out: String::new(),
            scale: false,
            max_nodes: 1 << 20,
            save_at: None,
            snapshot: String::new(),
            resume: String::new(),
            socket: String::new(),
            cache_dir: String::new(),
            workloads: String::new(),
            algorithms: String::new(),
            seeds: String::new(),
            shutdown: false,
            self_check: false,
            via_serve: false,
            scenario: String::new(),
            cluster: 0,
            topology: None,
            nodes_explicit: false,
        }
    }
}

/// Parses a `--topology` value: `flat` or `hier:<local>x<rings>` with
/// both factors at least 2 (a single-node local ring is just its bridge,
/// and a single ring is the flat topology).
fn parse_topology(value: &str) -> Result<Option<(usize, usize)>, String> {
    if value == "flat" {
        return Ok(None);
    }
    let spec = value.strip_prefix("hier:").ok_or_else(|| {
        format!("--topology expects `flat` or `hier:<local>x<rings>`, got {value:?}")
    })?;
    let (local, rings) = spec.split_once('x').ok_or_else(|| {
        format!("--topology hier expects `<local>x<rings>` (e.g. hier:4x4), got {spec:?}")
    })?;
    let parse = |what: &str, v: &str| -> Result<usize, String> {
        v.parse::<usize>()
            .map_err(|_| format!("--topology {what} expects a number, got {v:?}"))
    };
    let (local, rings) = (parse("local size", local)?, parse("ring count", rings)?);
    if local < 2 || rings < 2 {
        return Err(format!(
            "--topology hier:{local}x{rings} is degenerate; both factors must be >= 2"
        ));
    }
    Ok(Some((local, rings)))
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for unknown commands or options,
    /// missing values, and unparsable numbers.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        let Some(cmd) = it.next() else {
            return Ok(args); // no command: Help
        };
        args.command = match cmd.as_str() {
            "list" => Command::List,
            "run" => Command::Run,
            "compare" => Command::Compare,
            "timeline" => Command::Timeline,
            "trace" => Command::Trace,
            "replay" => Command::Replay,
            "directory" => Command::Directory,
            "report" => Command::Report,
            "bench" => Command::Bench,
            "chaos" => Command::Chaos,
            "serve" => Command::Serve,
            "submit" => Command::Submit,
            "scenario" => Command::Scenario,
            "help" | "--help" | "-h" => Command::Help,
            other => return Err(format!("unknown command {other:?}; try `flexsnoop help`")),
        };
        let mut scenario_verb = false;
        while let Some(key) = it.next() {
            // `scenario` takes positionals: an optional `run` verb, then
            // the builtin name or scenario file.
            if args.command == Command::Scenario && !key.starts_with("--") {
                if key == "run" && !scenario_verb {
                    scenario_verb = true;
                } else if args.scenario.is_empty() {
                    args.scenario = key.clone();
                } else {
                    return Err(format!(
                        "scenario takes one name or file, got extra argument {key:?}"
                    ));
                }
                continue;
            }
            // Boolean flags take no value.
            match key.as_str() {
                "--csv" => {
                    args.csv = true;
                    continue;
                }
                "--smoke" => {
                    args.smoke = true;
                    continue;
                }
                "--probe" => {
                    args.probe = true;
                    continue;
                }
                "--check" => {
                    args.check = true;
                    continue;
                }
                "--no-retry" => {
                    args.no_retry = true;
                    continue;
                }
                "--torus-only" => {
                    args.torus_only = true;
                    continue;
                }
                "--static-timeouts" => {
                    args.static_timeouts = true;
                    continue;
                }
                "--scale" => {
                    args.scale = true;
                    continue;
                }
                "--shutdown" => {
                    args.shutdown = true;
                    continue;
                }
                "--self-check" => {
                    args.self_check = true;
                    continue;
                }
                "--via-serve" => {
                    args.via_serve = true;
                    continue;
                }
                _ => {}
            }
            let value = it
                .next()
                .ok_or_else(|| format!("option {key} expects a value"))?;
            let num = |what: &str| -> Result<u64, String> {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("{what} expects a number, got {value:?}"))
            };
            match key.as_str() {
                "--workload" => args.workload = value.clone(),
                "--algorithm" => args.algorithm = value.clone(),
                "--predictor" => args.predictor = value.clone(),
                "--accesses" => {
                    args.accesses = num("--accesses")?;
                    args.accesses_explicit = true;
                }
                "--seed" => args.seed = num("--seed")?,
                "--nodes" => {
                    args.nodes = num("--nodes")? as usize;
                    args.nodes_explicit = true;
                }
                "--topology" => args.topology = parse_topology(value)?,
                "--cluster" => args.cluster = num("--cluster")? as usize,
                "--transactions" => args.transactions = num("--transactions")? as usize,
                "--trace" => args.trace = value.clone(),
                "--out" => args.out = value.clone(),
                "--threads" => args.threads = num("--threads")? as usize,
                "--schedules" => args.schedules = num("--schedules")?,
                "--schedule" => args.schedule = Some(num("--schedule")?),
                "--budget" => args.budget = Some(num("--budget")?),
                "--predictor-fault" => args.predictor_fault = value.clone(),
                "--coverage-baseline" => args.coverage_baseline = value.clone(),
                "--coverage-out" => args.coverage_out = value.clone(),
                "--max-nodes" => args.max_nodes = num("--max-nodes")? as usize,
                "--save-at" => args.save_at = Some(num("--save-at")?),
                "--snapshot" => args.snapshot = value.clone(),
                "--resume" => args.resume = value.clone(),
                "--socket" => args.socket = value.clone(),
                "--cache-dir" => args.cache_dir = value.clone(),
                "--workloads" => args.workloads = value.clone(),
                "--algorithms" => args.algorithms = value.clone(),
                "--seeds" => args.seeds = value.clone(),
                other => return Err(format!("unknown option {other:?}; try `flexsnoop help`")),
            }
        }
        // A hierarchical topology implies its node count; an explicit
        // --nodes must agree with it.
        if let Some((local, rings)) = args.topology {
            let covered = local * rings;
            if args.nodes_explicit && args.nodes != covered {
                return Err(format!(
                    "--topology hier:{local}x{rings} covers {covered} nodes, \
                     but --nodes {} was given",
                    args.nodes
                ));
            }
            args.nodes = covered;
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv("run")).unwrap();
        assert_eq!(a.command, Command::Run);
        assert_eq!(a.workload, "specweb");
        assert_eq!(a.accesses, 4_000);
        assert_eq!(a.nodes, 8);
        assert!(!a.csv);
    }

    #[test]
    fn full_option_set() {
        let a = Args::parse(&argv(
            "compare --workload fft --algorithm lazy --predictor sub2k \
             --accesses 123 --seed 9 --nodes 4 --transactions 7 --csv",
        ))
        .unwrap();
        assert_eq!(a.command, Command::Compare);
        assert_eq!(a.workload, "fft");
        assert_eq!(a.algorithm, "lazy");
        assert_eq!(a.predictor, "sub2k");
        assert_eq!(a.accesses, 123);
        assert_eq!(a.seed, 9);
        assert_eq!(a.nodes, 4);
        assert_eq!(a.transactions, 7);
        assert!(a.csv);
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(Args::parse(&[]).unwrap().command, Command::Help);
    }

    #[test]
    fn threads_defaults_to_auto() {
        assert_eq!(Args::parse(&argv("compare")).unwrap().threads, 0);
        assert_eq!(
            Args::parse(&argv("compare --threads 3")).unwrap().threads,
            3
        );
    }

    #[test]
    fn chaos_options_parse() {
        let a = Args::parse(&argv(
            "chaos --schedules 12 --seed 3 --no-retry --out summary.md",
        ))
        .unwrap();
        assert_eq!(a.command, Command::Chaos);
        assert_eq!(a.schedules, 12);
        assert!(a.no_retry);
        assert_eq!(a.out, "summary.md");
        assert_eq!(a.schedule, None);
        assert!(!a.accesses_explicit);

        let b = Args::parse(&argv("chaos --schedule 99 --budget 4")).unwrap();
        assert_eq!(b.schedule, Some(99));
        assert_eq!(b.budget, Some(4));
        assert!(!b.no_retry);
        assert!(!b.torus_only);
        assert!(!b.static_timeouts);

        let c = Args::parse(&argv(
            "chaos --torus-only --static-timeouts \
             --coverage-baseline base.txt --coverage-out cov.txt",
        ))
        .unwrap();
        assert!(c.torus_only);
        assert!(c.static_timeouts);
        assert_eq!(c.coverage_baseline, "base.txt");
        assert_eq!(c.coverage_out, "cov.txt");
    }

    #[test]
    fn bench_options_parse() {
        let a = Args::parse(&argv("bench --scale --max-nodes 131072 --out results")).unwrap();
        assert_eq!(a.command, Command::Bench);
        assert!(a.scale);
        assert_eq!(a.max_nodes, 131072);
        assert_eq!(a.out, "results");
        let b = Args::parse(&argv("bench")).unwrap();
        assert!(!b.scale);
        assert_eq!(b.max_nodes, 1 << 20);
    }

    #[test]
    fn checkpoint_options_parse() {
        let a = Args::parse(&argv("run --save-at 5000 --snapshot state.snap")).unwrap();
        assert_eq!(a.save_at, Some(5000));
        assert_eq!(a.snapshot, "state.snap");
        assert!(a.resume.is_empty());

        let b = Args::parse(&argv("run --resume state.snap")).unwrap();
        assert_eq!(b.resume, "state.snap");
        assert_eq!(b.save_at, None);

        assert!(Args::parse(&argv("run --save-at soon"))
            .unwrap_err()
            .contains("number"));
        assert!(Args::parse(&argv("run --resume"))
            .unwrap_err()
            .contains("expects a value"));
    }

    #[test]
    fn serve_and_submit_options_parse() {
        let a = Args::parse(&argv(
            "serve --socket /tmp/fs.sock --cache-dir results/cache --threads 2",
        ))
        .unwrap();
        assert_eq!(a.command, Command::Serve);
        assert_eq!(a.socket, "/tmp/fs.sock");
        assert_eq!(a.cache_dir, "results/cache");
        assert!(!a.self_check);

        let b = Args::parse(&argv(
            "submit --socket /tmp/fs.sock --workloads specjbb,specweb \
             --algorithms lazy,eager --seeds 1,2 --accesses 200 --probe",
        ))
        .unwrap();
        assert_eq!(b.command, Command::Submit);
        assert_eq!(b.workloads, "specjbb,specweb");
        assert_eq!(b.algorithms, "lazy,eager");
        assert_eq!(b.seeds, "1,2");
        assert!(b.probe);
        assert!(!b.shutdown);

        let c = Args::parse(&argv("submit --socket /tmp/fs.sock --shutdown")).unwrap();
        assert!(c.shutdown);
        let d = Args::parse(&argv("serve --self-check")).unwrap();
        assert!(d.self_check);
        let e = Args::parse(&argv(
            "report --smoke --via-serve --cache-dir results/cache",
        ))
        .unwrap();
        assert!(e.via_serve);
        assert_eq!(e.cache_dir, "results/cache");
    }

    #[test]
    fn predictor_fault_option_parses() {
        let a = Args::parse(&argv("run --predictor-fault force-negative:3:5")).unwrap();
        assert_eq!(a.predictor_fault, "force-negative:3:5");
        let b = Args::parse(&argv("run --accesses 77")).unwrap();
        assert!(b.accesses_explicit);
    }

    #[test]
    fn scenario_options_parse() {
        let a = Args::parse(&argv("scenario run partition-heal --smoke")).unwrap();
        assert_eq!(a.command, Command::Scenario);
        assert_eq!(a.scenario, "partition-heal");
        assert!(a.smoke);

        // The `run` verb is optional; a bare file works too.
        let b = Args::parse(&argv("scenario cases/heal.scn --threads 2")).unwrap();
        assert_eq!(b.scenario, "cases/heal.scn");
        assert_eq!(b.threads, 2);

        // A scenario literally named `run` still resolves: the first
        // `run` is the verb, the second the name.
        let c = Args::parse(&argv("scenario run run")).unwrap();
        assert_eq!(c.scenario, "run");

        assert!(Args::parse(&argv("scenario run a b"))
            .unwrap_err()
            .contains("extra argument"));
    }

    #[test]
    fn topology_option_parses_and_fixes_the_node_count() {
        let a = Args::parse(&argv("run --topology hier:4x4 --cluster 4")).unwrap();
        assert_eq!(a.topology, Some((4, 4)));
        assert_eq!(a.nodes, 16, "hier topology implies its node count");
        assert_eq!(a.cluster, 4);

        let b = Args::parse(&argv("run --topology flat --nodes 4")).unwrap();
        assert_eq!(b.topology, None);
        assert_eq!(b.nodes, 4);

        // An agreeing explicit --nodes is fine, in either order.
        let c = Args::parse(&argv("chaos --nodes 8 --topology hier:2x4")).unwrap();
        assert_eq!(c.topology, Some((2, 4)));
        assert_eq!(c.nodes, 8);

        let err = Args::parse(&argv("run --topology hier:2x4 --nodes 16")).unwrap_err();
        assert!(err.contains("covers 8 nodes"), "{err}");
        assert!(Args::parse(&argv("run --topology hier:1x4"))
            .unwrap_err()
            .contains("degenerate"));
        assert!(Args::parse(&argv("run --topology hier:4"))
            .unwrap_err()
            .contains("<local>x<rings>"));
        assert!(Args::parse(&argv("run --topology ring"))
            .unwrap_err()
            .contains("flat"));
        assert!(Args::parse(&argv("run --topology hier:axb"))
            .unwrap_err()
            .contains("number"));
    }

    #[test]
    fn errors_are_actionable() {
        assert!(Args::parse(&argv("frobnicate"))
            .unwrap_err()
            .contains("unknown command"));
        assert!(Args::parse(&argv("run --accesses"))
            .unwrap_err()
            .contains("expects a value"));
        assert!(Args::parse(&argv("run --accesses many"))
            .unwrap_err()
            .contains("number"));
        assert!(Args::parse(&argv("run --bogus 1"))
            .unwrap_err()
            .contains("unknown option"));
    }
}
