//! Fault injection for predictor-robustness studies (paper §4.3.4).
//!
//! The paper's implementation-difficulty argument hinges on what happens
//! when a hardware race corrupts a prediction: *"an unnoticed false
//! negative in Superset and Exact \[means\] a request skips the snoop
//! operation at the CMP that has the line in supplier state; therefore,
//! execution is incorrect. [An unnoticed false positive in Subset means]
//! the request unnecessarily snoops a CMP that does not have the line;
//! therefore, execution is slower but still correct."*
//!
//! [`FaultInjectingPredictor`] wraps any predictor and flips a bounded
//! number of its answers in a chosen direction, letting tests and studies
//! observe exactly those two failure modes.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::LineAddr;

use crate::{PredictorCounters, SupplierPredictor};

/// Which way injected faults flip predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Turn positives into negatives (the dangerous direction for
    /// Superset/Exact: a supplier may be skipped).
    ForceNegative,
    /// Turn negatives into positives (the benign direction: a useless
    /// snoop happens; execution stays correct).
    ForcePositive,
}

/// A predictor wrapper that corrupts every `period`-th prediction, up to
/// `budget` times.
#[derive(Debug)]
pub struct FaultInjectingPredictor<P> {
    inner: P,
    kind: FaultKind,
    period: u64,
    budget: u64,
    seen: u64,
    injected: u64,
}

impl<P: SupplierPredictor> FaultInjectingPredictor<P> {
    /// Wraps `inner`, flipping every `period`-th prediction (1 = every
    /// prediction) in the `kind` direction, at most `budget` times.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(inner: P, kind: FaultKind, period: u64, budget: u64) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            inner,
            kind,
            period,
            budget,
            seen: 0,
            injected: 0,
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

/// Serializes the wrapped predictor plus the fault-injection progress
/// (`seen`, `injected`); the kind, period and budget are configuration.
impl<P: SupplierPredictor> Snapshot for FaultInjectingPredictor<P> {
    fn save_into(&self, w: &mut SnapWriter) {
        self.inner.save_into(w);
        w.put_u64(self.seen);
        w.put_u64(self.injected);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.inner.restore_from(r)?;
        self.seen = r.get_u64()?;
        self.injected = r.get_u64()?;
        Ok(())
    }
}

impl<P: SupplierPredictor> SupplierPredictor for FaultInjectingPredictor<P> {
    fn predict(&mut self, line: LineAddr) -> bool {
        let honest = self.inner.predict(line);
        self.seen += 1;
        if self.injected < self.budget && self.seen.is_multiple_of(self.period) {
            let corrupted = match self.kind {
                FaultKind::ForceNegative => false,
                FaultKind::ForcePositive => true,
            };
            if corrupted != honest {
                self.injected += 1;
                return corrupted;
            }
        }
        honest
    }

    fn supplier_gained(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.inner.supplier_gained(line)
    }

    fn supplier_lost(&mut self, line: LineAddr) {
        self.inner.supplier_lost(line)
    }

    fn feedback(&mut self, line: LineAddr, was_supplier: bool) {
        self.inner.feedback(line, was_supplier)
    }

    fn counters(&self) -> PredictorCounters {
        self.inner.counters()
    }

    fn storage_bits(&self) -> usize {
        self.inner.storage_bits()
    }

    fn injected_faults(&self) -> u64 {
        self.injected + self.inner.injected_faults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerfectPredictor;

    fn tracked() -> FaultInjectingPredictor<PerfectPredictor> {
        let mut p = PerfectPredictor::new();
        p.supplier_gained(LineAddr(1));
        FaultInjectingPredictor::new(p, FaultKind::ForceNegative, 1, 2)
    }

    #[test]
    fn injects_up_to_budget() {
        let mut p = tracked();
        assert!(!p.predict(LineAddr(1)), "fault 1");
        assert!(!p.predict(LineAddr(1)), "fault 2");
        assert!(p.predict(LineAddr(1)), "budget exhausted: honest again");
        assert_eq!(p.injected(), 2);
    }

    #[test]
    fn period_spaces_faults() {
        let mut inner = PerfectPredictor::new();
        inner.supplier_gained(LineAddr(1));
        let mut p = FaultInjectingPredictor::new(inner, FaultKind::ForceNegative, 3, 10);
        let answers: Vec<bool> = (0..6).map(|_| p.predict(LineAddr(1))).collect();
        assert_eq!(answers, [true, true, false, true, true, false]);
    }

    #[test]
    fn force_positive_only_flips_negatives() {
        let inner = PerfectPredictor::new(); // tracks nothing: all negative
        let mut p = FaultInjectingPredictor::new(inner, FaultKind::ForcePositive, 1, 1);
        assert!(p.predict(LineAddr(9)), "negative flipped to positive");
        assert!(!p.predict(LineAddr(9)), "budget spent");
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn maintenance_passes_through() {
        let mut p = tracked();
        p.supplier_lost(LineAddr(1));
        // Budget would corrupt positives, but the honest answer is now
        // negative anyway; no injection is recorded for a no-op flip.
        assert!(!p.predict(LineAddr(1)));
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn snapshot_mid_budget_resumes_identical_injection() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        let mut inner = PerfectPredictor::new();
        inner.supplier_gained(LineAddr(1));
        let mut p = FaultInjectingPredictor::new(inner, FaultKind::ForceNegative, 3, 4);
        // Burn part of the budget so `seen` and `injected` are mid-flight.
        for _ in 0..7 {
            p.predict(LineAddr(1));
        }
        assert_eq!(p.injected(), 2);

        let bytes = snapshot_bytes(&p);
        let mut fresh = PerfectPredictor::new();
        fresh.supplier_gained(LineAddr(1));
        let mut q = FaultInjectingPredictor::new(fresh, FaultKind::ForceNegative, 3, 4);
        restore_bytes(&mut q, &bytes).expect("restore");

        let a: Vec<bool> = (0..10).map(|_| p.predict(LineAddr(1))).collect();
        let b: Vec<bool> = (0..10).map(|_| q.predict(LineAddr(1))).collect();
        assert_eq!(a, b, "fault schedule diverged after restore");
        assert_eq!(p.injected(), q.injected());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        FaultInjectingPredictor::new(PerfectPredictor::new(), FaultKind::ForceNegative, 0, 1);
    }
}
