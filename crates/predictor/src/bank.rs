//! Machine-wide predictor banks: one logical predictor per CMP, stored flat.
//!
//! The simulator used to hold `Vec<Box<dyn SupplierPredictor + Send>>` — one
//! heap allocation (plus vtable dispatch) per node. At the 8-node paper
//! configuration that is invisible; at the million-node scale targeted by
//! `bench --scale` the boxes dominate both memory and cache misses. A
//! [`PredictorBank`] keeps the same per-node *semantics* while letting the
//! common cases collapse into flat storage:
//!
//! * [`PredictorBank::Null`] — algorithms that never predict (Lazy, Eager,
//!   Oracle) need no storage at all, regardless of node count.
//! * [`PredictorBank::Subset`] — every node's Subset table lives in one
//!   shared [`SetAssocCache`], with an address transform that gives each
//!   node a disjoint range of sets ([`SubsetBank`]).
//! * [`PredictorBank::Boxed`] — the general fallback (Superset, Exact,
//!   Perfect, fault-injecting wrappers) keeps the original boxed layout.
//!
//! The flat Subset layout is **bit-identical** to per-node tables: each
//! flat set is touched by exactly one node, so LRU victim selection — which
//! only compares stamps *within* a set — orders entries exactly as the
//! per-node table would. The equivalence property test at the bottom of
//! this file pins that down against randomized op streams.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::{CacheGeometry, LineAddr, SetAssocCache};

use crate::spec::PredictorSpec;
use crate::{PredictorCounters, SupplierPredictor};

/// Every node's Subset predictor in one flat set-associative array.
///
/// A node's table of `S` sets becomes sets `[node * S, (node + 1) * S)` of
/// the shared array via the key transform
///
/// ```text
/// key = (line >> set_bits) << (set_bits + node_bits)
///     | node << set_bits
///     | line & (S - 1)
/// ```
///
/// which is injective per node and maps `(node, line)` to flat set
/// `node * S + (line mod S)` — the same set, holding the same tags in the
/// same LRU order, as the node's private table would use.
#[derive(Debug, Clone)]
pub struct SubsetBank {
    table: SetAssocCache<()>,
    node_set_bits: u32,
    node_bits: u32,
    entries_per_node: usize,
    entry_bits: usize,
    counters: Vec<PredictorCounters>,
}

impl SubsetBank {
    /// Creates a bank of `nodes` Subset predictors of `entries` entries
    /// each (8-way, as in the paper's Table 4 configurations).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or the per-node set count is not a power of two
    /// ([`PredictorSpec::build_bank`] falls back to boxed predictors rather
    /// than hitting this).
    pub fn new(nodes: usize, entries: usize, entry_bits: usize) -> Self {
        const WAYS: usize = 8;
        assert!(nodes.is_power_of_two(), "node count must be a power of two");
        assert!(
            entries.is_multiple_of(WAYS) && (entries / WAYS).is_power_of_two(),
            "per-node entries ({entries}) must give a power-of-two set count"
        );
        let node_sets = entries / WAYS;
        let geometry = CacheGeometry {
            sets: node_sets * nodes,
            ways: WAYS,
        };
        Self {
            table: SetAssocCache::new(geometry),
            node_set_bits: node_sets.trailing_zeros(),
            node_bits: nodes.trailing_zeros(),
            entries_per_node: entries,
            entry_bits,
            counters: vec![PredictorCounters::default(); nodes],
        }
    }

    /// Number of nodes in the bank.
    pub fn nodes(&self) -> usize {
        self.counters.len()
    }

    #[inline]
    fn key(&self, node: usize, line: LineAddr) -> LineAddr {
        let sb = self.node_set_bits;
        // Line addresses must fit in the bits above the (node, set) fields;
        // aliasing there would introduce false positives, which Subset must
        // never produce.
        debug_assert!(
            line.0 >> sb < 1 << (64 - sb - self.node_bits),
            "line address {line} too wide for the flat bank key transform"
        );
        LineAddr(
            ((line.0 >> sb) << (sb + self.node_bits))
                | ((node as u64) << sb)
                | (line.0 & ((1 << sb) - 1)),
        )
    }

    fn predict(&mut self, node: usize, line: LineAddr) -> bool {
        self.counters[node].lookups += 1;
        // Prediction refreshes LRU, exactly as SubsetPredictor::predict.
        self.table.get(self.key(node, line)).is_some()
    }

    fn supplier_gained(&mut self, node: usize, line: LineAddr) {
        self.counters[node].trainings += 1;
        // Conflicts silently drop the victim (a future false negative);
        // Subset never requests downgrades.
        let _victim = self.table.insert(self.key(node, line), ());
    }

    fn supplier_lost(&mut self, node: usize, line: LineAddr) {
        self.counters[node].trainings += 1;
        self.table.remove(self.key(node, line));
    }
}

impl Snapshot for SubsetBank {
    fn save_into(&self, w: &mut SnapWriter) {
        self.table.save_into_with(w, |_, _| {});
        w.put_usize(self.counters.len());
        for c in &self.counters {
            c.save_into(w);
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.table.restore_from_with(r, |_| Ok(()))?;
        let n = r.get_usize()?;
        if n != self.counters.len() {
            return Err(SnapError::Corrupt("bank node count does not match config"));
        }
        for c in &mut self.counters {
            c.restore_from(r)?;
        }
        Ok(())
    }
}

/// A machine's worth of supplier predictors, indexed by node id.
///
/// Built by [`PredictorSpec::build_bank`]; pre-built boxed predictors (e.g.
/// fault-injecting wrappers) are wrapped via [`PredictorBank::Boxed`].
#[derive(Debug)]
pub enum PredictorBank {
    /// No predictor at any node (Lazy, Eager, Oracle): zero storage.
    Null {
        /// Number of nodes the bank answers for.
        nodes: usize,
    },
    /// Flat shared Subset tables (see [`SubsetBank`]).
    Subset(SubsetBank),
    /// One boxed predictor per node — the general fallback.
    Boxed(Vec<Box<dyn SupplierPredictor + Send>>),
}

impl PredictorBank {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        match self {
            PredictorBank::Null { nodes } => *nodes,
            PredictorBank::Subset(bank) => bank.nodes(),
            PredictorBank::Boxed(v) => v.len(),
        }
    }

    /// Whether the bank covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predicts whether node `node` can supply `line`.
    pub fn predict(&mut self, node: usize, line: LineAddr) -> bool {
        match self {
            PredictorBank::Null { .. } => false,
            PredictorBank::Subset(bank) => bank.predict(node, line),
            PredictorBank::Boxed(v) => v[node].predict(line),
        }
    }

    /// Records that `line` entered a supplier state at `node`; returns a
    /// line the protocol must downgrade (Exact predictors only).
    pub fn supplier_gained(&mut self, node: usize, line: LineAddr) -> Option<LineAddr> {
        match self {
            PredictorBank::Null { .. } => None,
            PredictorBank::Subset(bank) => {
                bank.supplier_gained(node, line);
                None
            }
            PredictorBank::Boxed(v) => v[node].supplier_gained(line),
        }
    }

    /// Records that `line` left supplier state at `node`.
    pub fn supplier_lost(&mut self, node: usize, line: LineAddr) {
        match self {
            PredictorBank::Null { .. } => {}
            PredictorBank::Subset(bank) => bank.supplier_lost(node, line),
            PredictorBank::Boxed(v) => v[node].supplier_lost(line),
        }
    }

    /// Ground-truth feedback after an actual snoop of `node`.
    pub fn feedback(&mut self, node: usize, line: LineAddr, was_supplier: bool) {
        match self {
            // Null and Subset ignore feedback, exactly as their per-node
            // predictors do (only Superset trains its Exclude cache on it).
            PredictorBank::Null { .. } | PredictorBank::Subset(_) => {}
            PredictorBank::Boxed(v) => v[node].feedback(line, was_supplier),
        }
    }

    /// Access/training counters for node `node`.
    pub fn counters(&self, node: usize) -> PredictorCounters {
        match self {
            PredictorBank::Null { .. } => PredictorCounters::default(),
            PredictorBank::Subset(bank) => bank.counters[node],
            PredictorBank::Boxed(v) => v[node].counters(),
        }
    }

    /// Storage occupied by node `node`'s predictor, in bits.
    pub fn storage_bits(&self, node: usize) -> usize {
        match self {
            PredictorBank::Null { .. } => 0,
            PredictorBank::Subset(bank) => bank.entries_per_node * (bank.entry_bits + 1),
            PredictorBank::Boxed(v) => v[node].storage_bits(),
        }
    }

    /// Total predictions deliberately corrupted across all nodes
    /// (fault-injection studies; zero for honest banks).
    pub fn injected_faults_total(&self) -> u64 {
        match self {
            PredictorBank::Null { .. } | PredictorBank::Subset(_) => 0,
            PredictorBank::Boxed(v) => v.iter().map(|p| p.injected_faults()).sum(),
        }
    }

    /// Estimated heap footprint of the whole bank in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        match self {
            PredictorBank::Null { .. } => 0,
            PredictorBank::Subset(bank) => {
                bank.table.footprint_bytes()
                    + (bank.counters.capacity() * size_of::<PredictorCounters>()) as u64
            }
            // Boxed internals are opaque; charge the advertised storage
            // budget plus the box headers.
            PredictorBank::Boxed(v) => v.iter().map(|p| (p.storage_bits() / 8 + 32) as u64).sum(),
        }
    }
}

/// Serializes the bank behind a one-byte layout tag so restoring onto a
/// bank built from a different spec (or node count) fails loudly instead
/// of silently misreading the stream.
impl Snapshot for PredictorBank {
    fn save_into(&self, w: &mut SnapWriter) {
        match self {
            PredictorBank::Null { nodes } => {
                w.put_u8(0);
                w.put_usize(*nodes);
            }
            PredictorBank::Subset(bank) => {
                w.put_u8(1);
                bank.save_into(w);
            }
            PredictorBank::Boxed(v) => {
                w.put_u8(2);
                w.put_usize(v.len());
                for p in v {
                    p.save_into(w);
                }
            }
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tag = r.get_u8()?;
        match (self, tag) {
            (PredictorBank::Null { nodes }, 0) => {
                if r.get_usize()? != *nodes {
                    return Err(SnapError::Corrupt("bank node count does not match config"));
                }
                Ok(())
            }
            (PredictorBank::Subset(bank), 1) => bank.restore_from(r),
            (PredictorBank::Boxed(v), 2) => {
                if r.get_usize()? != v.len() {
                    return Err(SnapError::Corrupt("bank node count does not match config"));
                }
                for p in v {
                    p.restore_from(r)?;
                }
                Ok(())
            }
            _ => Err(SnapError::Corrupt(
                "predictor bank layout does not match config",
            )),
        }
    }
}

impl PredictorSpec {
    /// Builds predictors for all `nodes` CMPs at once, picking the most
    /// compact layout that preserves per-node semantics exactly.
    ///
    /// `None` becomes storage-free; `Subset` flattens into a shared table
    /// when the geometry allows (power-of-two node count and per-node set
    /// count — true for every paper configuration and every `bench --scale`
    /// point); everything else falls back to one boxed predictor per node,
    /// identical to calling [`PredictorSpec::build`] `nodes` times.
    pub fn build_bank(&self, nodes: usize) -> PredictorBank {
        const WAYS: usize = 8;
        match *self {
            PredictorSpec::None => PredictorBank::Null { nodes },
            PredictorSpec::Subset { entries }
                if nodes.is_power_of_two()
                    && entries.is_multiple_of(WAYS)
                    && (entries / WAYS).is_power_of_two() =>
            {
                PredictorBank::Subset(SubsetBank::new(nodes, entries, Self::entry_bits(entries)))
            }
            _ => PredictorBank::Boxed((0..nodes).map(|_| self.build()).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SubsetPredictor;
    use flexsnoop_engine::SplitMix64;

    #[test]
    fn null_bank_is_inert_and_free() {
        let mut bank = PredictorSpec::None.build_bank(1024);
        assert_eq!(bank.len(), 1024);
        assert!(!bank.predict(7, LineAddr(1)));
        assert_eq!(bank.supplier_gained(7, LineAddr(1)), None);
        bank.supplier_lost(7, LineAddr(1));
        bank.feedback(7, LineAddr(1), true);
        assert_eq!(bank.counters(7), PredictorCounters::default());
        assert_eq!(bank.storage_bits(7), 0);
        assert_eq!(bank.footprint_bytes(), 0);
    }

    #[test]
    fn subset_spec_flattens_and_matches_paper_storage() {
        let bank = PredictorSpec::SUB2K.build_bank(8);
        assert!(matches!(bank, PredictorBank::Subset(_)));
        let per_node = SubsetPredictor::sub2k().storage_bits();
        assert_eq!(bank.storage_bits(3), per_node);
    }

    #[test]
    fn non_power_of_two_nodes_fall_back_to_boxed() {
        let bank = PredictorSpec::SUB2K.build_bank(6);
        assert!(matches!(bank, PredictorBank::Boxed(_)));
        assert_eq!(bank.len(), 6);
    }

    #[test]
    fn superset_spec_stays_boxed() {
        let bank = PredictorSpec::SUP_Y2K.build_bank(8);
        assert!(matches!(bank, PredictorBank::Boxed(_)));
    }

    /// The flat Subset bank must be observationally identical to one
    /// private SubsetPredictor per node under any interleaving of
    /// operations: same predictions, same counters.
    #[test]
    fn flat_subset_bank_matches_private_tables() {
        const NODES: usize = 8;
        const ENTRIES: usize = 16; // 2 sets x 8 ways per node: tiny, conflict-heavy
        let spec = PredictorSpec::Subset { entries: ENTRIES };
        let mut bank = spec.build_bank(NODES);
        assert!(matches!(bank, PredictorBank::Subset(_)));
        let mut private: Vec<SubsetPredictor> = (0..NODES)
            .map(|_| SubsetPredictor::new(CacheGeometry::from_entries(ENTRIES, 8), 18))
            .collect();

        let mut rng = SplitMix64::new(0xBA4C);
        for _ in 0..20_000 {
            let node = (rng.next_u64() % NODES as u64) as usize;
            // A small, clashing line pool plus some sparse high addresses.
            let line = match rng.next_u64() % 4 {
                0..=2 => LineAddr(rng.next_u64() % 48),
                _ => LineAddr((rng.next_u64() % 48) << 34),
            };
            match rng.next_u64() % 3 {
                0 => {
                    let flat = bank.predict(node, line);
                    let boxed = private[node].predict(line);
                    assert_eq!(flat, boxed, "prediction diverged at {node}/{line}");
                }
                1 => {
                    assert_eq!(
                        bank.supplier_gained(node, line),
                        private[node].supplier_gained(line)
                    );
                }
                _ => {
                    bank.supplier_lost(node, line);
                    private[node].supplier_lost(line);
                }
            }
        }
        for (node, boxed) in private.iter().enumerate() {
            assert_eq!(
                bank.counters(node),
                boxed.counters(),
                "counters diverged at node {node}"
            );
        }
    }

    /// Snapshot/restore of a flat Subset bank must be invisible to future
    /// behavior: restored and original banks answer identically forever.
    #[test]
    fn flat_subset_bank_snapshot_round_trip() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        const NODES: usize = 4;
        let spec = PredictorSpec::Subset { entries: 16 };
        let mut bank = spec.build_bank(NODES);
        let mut rng = SplitMix64::new(0x5A9);
        let drive = |bank: &mut PredictorBank, rng: &mut SplitMix64, n: usize| {
            (0..n)
                .map(|_| {
                    let node = (rng.next_u64() % NODES as u64) as usize;
                    let line = LineAddr(rng.next_u64() % 64);
                    match rng.next_u64() % 3 {
                        0 => bank.predict(node, line),
                        1 => bank.supplier_gained(node, line).is_some(),
                        _ => {
                            bank.supplier_lost(node, line);
                            false
                        }
                    }
                })
                .collect::<Vec<bool>>()
        };
        drive(&mut bank, &mut rng, 5_000);

        let bytes = snapshot_bytes(&bank);
        let mut restored = spec.build_bank(NODES);
        restore_bytes(&mut restored, &bytes).expect("restore");

        let mut rng_a = SplitMix64::new(0xFEED);
        let mut rng_b = SplitMix64::new(0xFEED);
        assert_eq!(
            drive(&mut bank, &mut rng_a, 5_000),
            drive(&mut restored, &mut rng_b, 5_000),
            "restored bank diverged from the original"
        );
        for node in 0..NODES {
            assert_eq!(bank.counters(node), restored.counters(node));
        }
    }

    /// Boxed predictors round-trip through the trait-object forwarding
    /// impl — including Superset's Bloom counters and Exclude cache.
    #[test]
    fn boxed_superset_bank_snapshot_round_trip() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        let spec = PredictorSpec::SUP_Y2K;
        let mut bank = spec.build_bank(2);
        let mut rng = SplitMix64::new(0xC0DE);
        // Superset's Bloom filter forbids losing a line that was never
        // gained, so track the gained multiset per node.
        let mut gained: [Vec<LineAddr>; 2] = [Vec::new(), Vec::new()];
        for _ in 0..4_000 {
            let node = (rng.next_u64() & 1) as usize;
            let line = LineAddr(rng.next_u64() % 512);
            match rng.next_u64() % 4 {
                0 => {
                    bank.predict(node, line);
                }
                1 => {
                    bank.supplier_gained(node, line);
                    gained[node].push(line);
                }
                2 => {
                    if let Some(l) = gained[node].pop() {
                        bank.supplier_lost(node, l);
                    }
                }
                // Trains the Exclude cache on false positives.
                _ => bank.feedback(node, line, rng.next_u64() & 1 == 0),
            }
        }

        let bytes = snapshot_bytes(&bank);
        let mut restored = spec.build_bank(2);
        restore_bytes(&mut restored, &bytes).expect("restore");

        for i in 0..2_000u64 {
            let node = (i & 1) as usize;
            let line = LineAddr(i % 512);
            assert_eq!(
                bank.predict(node, line),
                restored.predict(node, line),
                "prediction diverged after restore at {node}/{line}"
            );
        }
        assert_eq!(bank.counters(0), restored.counters(0));
        assert_eq!(bank.counters(1), restored.counters(1));
    }

    #[test]
    fn snapshot_restore_rejects_layout_mismatch() {
        use flexsnoop_engine::snap::{restore_bytes, snapshot_bytes};
        let bank = PredictorSpec::SUB2K.build_bank(8);
        let bytes = snapshot_bytes(&bank);
        let mut wrong_layout = PredictorSpec::None.build_bank(8);
        assert!(matches!(
            restore_bytes(&mut wrong_layout, &bytes),
            Err(SnapError::Corrupt(
                "predictor bank layout does not match config"
            ))
        ));
        let mut wrong_nodes = PredictorSpec::None.build_bank(8);
        let none_bytes = snapshot_bytes(&PredictorSpec::None.build_bank(4));
        assert!(matches!(
            restore_bytes(&mut wrong_nodes, &none_bytes),
            Err(SnapError::Corrupt("bank node count does not match config"))
        ));
    }

    #[test]
    fn boxed_bank_forwards_everything() {
        let mut bank = PredictorBank::Boxed(vec![
            PredictorSpec::SUB512.build(),
            PredictorSpec::SUB512.build(),
        ]);
        bank.supplier_gained(0, LineAddr(5));
        assert!(bank.predict(0, LineAddr(5)));
        assert!(!bank.predict(1, LineAddr(5)), "nodes stay independent");
        assert_eq!(bank.counters(0).trainings, 1);
        assert_eq!(bank.counters(1).lookups, 1);
        assert!(bank.injected_faults_total() == 0);
    }
}
