//! Prediction-accuracy bookkeeping for Figure 11.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// Counts of the four prediction outcomes.
///
/// # Example
///
/// ```
/// use flexsnoop_predictor::AccuracyStats;
///
/// let mut acc = AccuracyStats::default();
/// acc.record(true, true); // predicted supplier, was supplier
/// acc.record(true, false); // false positive
/// assert_eq!(acc.true_positives, 1);
/// assert_eq!(acc.false_positives, 1);
/// assert!((acc.fraction_false_positive() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccuracyStats {
    /// Predicted supplier, CMP was the supplier.
    pub true_positives: u64,
    /// Predicted supplier, CMP was not the supplier.
    pub false_positives: u64,
    /// Predicted non-supplier, CMP was not the supplier.
    pub true_negatives: u64,
    /// Predicted non-supplier, CMP was the supplier.
    pub false_negatives: u64,
}

impl AccuracyStats {
    /// Records one prediction against ground truth.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    fn frac(&self, n: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            n as f64 / t as f64
        }
    }

    /// Fraction of predictions that were true positives.
    pub fn fraction_true_positive(&self) -> f64 {
        self.frac(self.true_positives)
    }

    /// Fraction of predictions that were false positives.
    pub fn fraction_false_positive(&self) -> f64 {
        self.frac(self.false_positives)
    }

    /// Fraction of predictions that were true negatives.
    pub fn fraction_true_negative(&self) -> f64 {
        self.frac(self.true_negatives)
    }

    /// Fraction of predictions that were false negatives.
    pub fn fraction_false_negative(&self) -> f64 {
        self.frac(self.false_negatives)
    }

    /// Merges another accuracy record into this one.
    pub fn merge(&mut self, other: &AccuracyStats) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }
}

impl Snapshot for AccuracyStats {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.true_positives);
        w.put_u64(self.false_positives);
        w.put_u64(self.true_negatives);
        w.put_u64(self.false_negatives);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.true_positives = r.get_u64()?;
        self.false_positives = r.get_u64()?;
        self.true_negatives = r.get_u64()?;
        self.false_negatives = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_all_four_quadrants() {
        let mut a = AccuracyStats::default();
        a.record(true, true);
        a.record(true, false);
        a.record(false, false);
        a.record(false, true);
        assert_eq!(a.true_positives, 1);
        assert_eq!(a.false_positives, 1);
        assert_eq!(a.true_negatives, 1);
        assert_eq!(a.false_negatives, 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut a = AccuracyStats::default();
        for i in 0..100 {
            a.record(i % 3 == 0, i % 2 == 0);
        }
        let sum = a.fraction_true_positive()
            + a.fraction_false_positive()
            + a.fraction_true_negative()
            + a.fraction_false_negative();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let a = AccuracyStats::default();
        assert_eq!(a.total(), 0);
        assert_eq!(a.fraction_true_positive(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = AccuracyStats::default();
        a.record(true, true);
        let mut b = AccuracyStats::default();
        b.record(false, true);
        a.merge(&b);
        assert_eq!(a.true_positives, 1);
        assert_eq!(a.false_negatives, 1);
    }
}
