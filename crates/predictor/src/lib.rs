//! Supplier predictors for Flexible Snooping (paper §4.3).
//!
//! Each CMP's gateway hosts a *Supplier Predictor* answering one question:
//! "does this CMP hold line X in a supplier state (`SG`, `E`, `D`, `T`)?"
//! The three implementable designs trade off which way they may be wrong:
//!
//! | Predictor | False positives | False negatives | Structure |
//! |-----------|-----------------|-----------------|-----------|
//! | [`SubsetPredictor`]   | never | possible | set-associative address cache |
//! | [`SupersetPredictor`] | possible | never | counting Bloom filter + Exclude cache |
//! | [`ExactPredictor`]    | never | never | address cache + line **downgrades** |
//!
//! [`PerfectPredictor`] is the evaluation-only oracle used for Figure 11's
//! "perfect" bars; [`NullPredictor`] stands in for algorithms that never
//! consult a predictor (Lazy, Eager, Oracle).
//!
//! The predictors only *track* supplier lines; the protocol tells them when
//! a line gains or loses supplier state via [`SupplierPredictor::supplier_gained`]
//! / [`supplier_lost`](SupplierPredictor::supplier_lost), and reports snoop
//! ground truth via [`feedback`](SupplierPredictor::feedback) (which trains
//! Superset's Exclude cache).

#![warn(missing_docs)]

pub mod accuracy;
pub mod bank;
pub mod bloom;
pub mod exact;
pub mod fault;
pub mod locality;
pub mod perfect;
pub mod spec;
pub mod subset;
pub mod superset;

pub use accuracy::AccuracyStats;
pub use bank::{PredictorBank, SubsetBank};
pub use bloom::{BloomFilter, BloomSpec};
pub use exact::ExactPredictor;
pub use fault::{FaultInjectingPredictor, FaultKind};
pub use locality::{LocalityTable, DEFAULT_LOCALITY_ENTRIES};
pub use perfect::PerfectPredictor;
pub use spec::PredictorSpec;
pub use subset::SubsetPredictor;
pub use superset::SupersetPredictor;

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::LineAddr;

/// Event counters every predictor keeps, consumed by the energy model
/// (predictions and training updates both cost energy; paper §6.1.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorCounters {
    /// Prediction lookups performed.
    pub lookups: u64,
    /// Training updates (inserts, removes, Bloom counter updates,
    /// Exclude-cache fills).
    pub trainings: u64,
}

impl Snapshot for PredictorCounters {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.lookups);
        w.put_u64(self.trainings);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.lookups = r.get_u64()?;
        self.trainings = r.get_u64()?;
        Ok(())
    }
}

/// A per-CMP supplier predictor (paper §4.3).
///
/// Implementations must uphold their advertised error class: `Subset` and
/// `Exact` must never return a positive for a line the CMP cannot supply,
/// and `Superset`, `Exact` and `Perfect` must never return a negative for a
/// line it can. The property tests in this crate enforce both.
///
/// Every predictor is [`Snapshot`]: checkpoint/restore serializes its full
/// mutable state (tables, filters, counters) so a resumed run predicts
/// bit-identically. Configuration (geometries, Bloom specs, fault budgets)
/// follows the overlay contract and is rebuilt, not serialized.
pub trait SupplierPredictor: std::fmt::Debug + Snapshot {
    /// Predicts whether the CMP can supply `line`.
    fn predict(&mut self, line: LineAddr) -> bool;

    /// Records that `line` entered a supplier state in this CMP.
    ///
    /// Returns a line that the protocol must **downgrade** out of its
    /// supplier state to keep the predictor exact (only [`ExactPredictor`]
    /// ever returns `Some`; paper §4.3.3).
    fn supplier_gained(&mut self, line: LineAddr) -> Option<LineAddr>;

    /// Records that `line` left supplier state (eviction, invalidation or
    /// downgrade).
    fn supplier_lost(&mut self, line: LineAddr);

    /// Ground-truth feedback after an actual snoop of this CMP: `line` was
    /// (not) suppliable. Default: ignored.
    fn feedback(&mut self, line: LineAddr, was_supplier: bool) {
        let _ = (line, was_supplier);
    }

    /// Access/training counters for the energy model.
    fn counters(&self) -> PredictorCounters;

    /// Total storage the predictor occupies, in bits (for reporting).
    fn storage_bits(&self) -> usize;

    /// Predictions this predictor deliberately corrupted (§4.3.4 studies).
    /// Zero for every honest predictor; [`FaultInjectingPredictor`]
    /// overrides it so run statistics can surface the injected count.
    fn injected_faults(&self) -> u64 {
        0
    }
}

/// Boxed predictors forward every call, so wrappers generic over
/// `P: SupplierPredictor` (such as [`FaultInjectingPredictor`]) can wrap a
/// runtime-chosen `Box<dyn SupplierPredictor + Send>`.
impl SupplierPredictor for Box<dyn SupplierPredictor + Send> {
    fn predict(&mut self, line: LineAddr) -> bool {
        (**self).predict(line)
    }

    fn supplier_gained(&mut self, line: LineAddr) -> Option<LineAddr> {
        (**self).supplier_gained(line)
    }

    fn supplier_lost(&mut self, line: LineAddr) {
        (**self).supplier_lost(line)
    }

    fn feedback(&mut self, line: LineAddr, was_supplier: bool) {
        (**self).feedback(line, was_supplier)
    }

    fn counters(&self) -> PredictorCounters {
        (**self).counters()
    }

    fn storage_bits(&self) -> usize {
        (**self).storage_bits()
    }

    fn injected_faults(&self) -> u64 {
        (**self).injected_faults()
    }
}

impl Snapshot for Box<dyn SupplierPredictor + Send> {
    fn save_into(&self, w: &mut SnapWriter) {
        (**self).save_into(w)
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        (**self).restore_from(r)
    }
}

/// Predictor stand-in for algorithms that never predict (Lazy, Eager,
/// Oracle). Always answers `false` and is never charged energy.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPredictor;

/// Stateless: nothing to serialize.
impl Snapshot for NullPredictor {
    fn save_into(&self, _w: &mut SnapWriter) {}

    fn restore_from(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

impl SupplierPredictor for NullPredictor {
    fn predict(&mut self, _line: LineAddr) -> bool {
        false
    }

    fn supplier_gained(&mut self, _line: LineAddr) -> Option<LineAddr> {
        None
    }

    fn supplier_lost(&mut self, _line: LineAddr) {}

    fn counters(&self) -> PredictorCounters {
        PredictorCounters::default()
    }

    fn storage_bits(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_predictor_is_inert() {
        let mut p = NullPredictor;
        assert!(!p.predict(LineAddr(1)));
        assert_eq!(p.supplier_gained(LineAddr(1)), None);
        p.supplier_lost(LineAddr(1));
        p.feedback(LineAddr(1), true);
        assert_eq!(p.counters(), PredictorCounters::default());
        assert_eq!(p.storage_bits(), 0);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut p: Box<dyn SupplierPredictor> = Box::new(NullPredictor);
        assert!(!p.predict(LineAddr(0)));
    }
}
