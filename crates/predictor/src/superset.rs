//! The Superset supplier predictor (paper §4.3.2).
//!
//! A counting Bloom filter tracks the CMP's supplier lines; aliasing makes
//! it answer "maybe" for lines that are not there (**false positives**), but
//! it can never miss a tracked line (**no false negatives**). A JETTY-style
//! *Exclude cache* — a small set-associative cache of addresses proven not
//! to be suppliable — filters out repeat offenders: every time a snoop
//! exposes a false positive, the address is inserted; every time the line
//! actually becomes suppliable, it is removed (before the Bloom insert, so
//! there is never a window where both structures disagree toward a false
//! negative).

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::{CacheGeometry, LineAddr, SetAssocCache};

use crate::bloom::{BloomFilter, BloomSpec};
use crate::{PredictorCounters, SupplierPredictor};

/// Superset predictor: counting Bloom filter plus Exclude cache.
///
/// # Example
///
/// ```
/// use flexsnoop_mem::LineAddr;
/// use flexsnoop_predictor::{SupersetPredictor, SupplierPredictor};
///
/// let mut p = SupersetPredictor::y2k();
/// p.supplier_gained(LineAddr(3));
/// assert!(p.predict(LineAddr(3))); // guaranteed: no false negatives
/// ```
#[derive(Debug, Clone)]
pub struct SupersetPredictor {
    bloom: BloomFilter,
    exclude: Option<SetAssocCache<()>>,
    exclude_entry_bits: usize,
    counters: PredictorCounters,
}

impl SupersetPredictor {
    /// Creates a predictor from a Bloom geometry and an optional Exclude
    /// cache geometry with its per-entry tag width.
    pub fn new(spec: BloomSpec, exclude: Option<(CacheGeometry, usize)>) -> Self {
        let (exclude, exclude_entry_bits) = match exclude {
            Some((g, bits)) => (Some(SetAssocCache::new(g)), bits),
            None => (None, 0),
        };
        Self {
            bloom: BloomFilter::new(spec),
            exclude,
            exclude_entry_bits,
            counters: PredictorCounters::default(),
        }
    }

    /// Paper `y512`: `y` Bloom filter + 512-entry Exclude cache.
    pub fn y512() -> Self {
        Self::new(
            BloomSpec::y_filter(),
            Some((CacheGeometry::from_entries(512, 8), 20)),
        )
    }

    /// Paper `y2k`: `y` Bloom filter + 2K-entry Exclude cache.
    pub fn y2k() -> Self {
        Self::new(
            BloomSpec::y_filter(),
            Some((CacheGeometry::from_entries(2048, 8), 18)),
        )
    }

    /// Paper `n2k`: `n` Bloom filter + 2K-entry Exclude cache.
    pub fn n2k() -> Self {
        Self::new(
            BloomSpec::n_filter(),
            Some((CacheGeometry::from_entries(2048, 8), 18)),
        )
    }

    /// A bare Bloom filter with no Exclude cache (ablation configuration).
    pub fn bare(spec: BloomSpec) -> Self {
        Self::new(spec, None)
    }
}

impl Snapshot for SupersetPredictor {
    fn save_into(&self, w: &mut SnapWriter) {
        self.bloom.save_into(w);
        w.put_bool(self.exclude.is_some());
        if let Some(exclude) = &self.exclude {
            exclude.save_into_with(w, |_, _| {});
        }
        self.counters.save_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.bloom.restore_from(r)?;
        let had_exclude = r.get_bool()?;
        match (&mut self.exclude, had_exclude) {
            (None, false) => {}
            (Some(exclude), true) => exclude.restore_from_with(r, |_| Ok(()))?,
            _ => {
                return Err(SnapError::Corrupt(
                    "exclude-cache presence does not match config",
                ));
            }
        }
        self.counters.restore_from(r)
    }
}

impl SupplierPredictor for SupersetPredictor {
    fn predict(&mut self, line: LineAddr) -> bool {
        self.counters.lookups += 1;
        if !self.bloom.may_contain(line) {
            return false;
        }
        if let Some(exclude) = &mut self.exclude {
            if exclude.get(line).is_some() {
                // Known alias: the Bloom filter says maybe, but a previous
                // snoop proved this exact address is not suppliable here.
                return false;
            }
        }
        true
    }

    fn supplier_gained(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.counters.trainings += 1;
        // Remove from the Exclude cache FIRST: if the line were still
        // excluded after the Bloom insert, predictions would be false
        // negatives, breaking the Superset guarantee.
        if let Some(exclude) = &mut self.exclude {
            exclude.remove(line);
        }
        self.bloom.insert(line);
        None
    }

    fn supplier_lost(&mut self, line: LineAddr) {
        self.counters.trainings += 1;
        self.bloom.remove(line);
    }

    fn feedback(&mut self, line: LineAddr, was_supplier: bool) {
        if was_supplier {
            return;
        }
        // The snoop found nothing: this address was a false positive.
        if let Some(exclude) = &mut self.exclude {
            self.counters.trainings += 1;
            exclude.insert(line, ());
        }
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }

    fn storage_bits(&self) -> usize {
        let exclude_bits = self
            .exclude
            .as_ref()
            .map(|e| e.geometry().entries() * (self.exclude_entry_bits + 1))
            .unwrap_or(0);
        self.bloom.storage_bits() + exclude_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_lines_always_predict_positive() {
        let mut p = SupersetPredictor::y2k();
        for i in 0..3000u64 {
            p.supplier_gained(LineAddr(i * 13));
        }
        for i in 0..3000u64 {
            assert!(p.predict(LineAddr(i * 13)), "false negative at {i}");
        }
    }

    #[test]
    fn feedback_trains_exclude_cache() {
        let mut p = SupersetPredictor::y2k();
        // Force an alias: one tracked line, probe a different line that
        // shares all three Bloom fields (identical low 21 bits).
        let tracked = LineAddr(0xABCDE);
        let alias = LineAddr(0xABCDE | (1 << 40));
        p.supplier_gained(tracked);
        assert!(p.predict(alias), "aliased address is a false positive");
        p.feedback(alias, false);
        assert!(!p.predict(alias), "exclude cache filters the repeat");
        assert!(p.predict(tracked), "the real line still predicts positive");
    }

    #[test]
    fn gaining_excluded_line_clears_exclusion() {
        let mut p = SupersetPredictor::y2k();
        let line = LineAddr(0x42);
        p.supplier_gained(LineAddr(0x42 | (1 << 40))); // make bloom positive for alias group
        p.feedback(line, false); // exclude `line`
        assert!(!p.predict(line));
        p.supplier_gained(line); // the CMP now really can supply it
        assert!(p.predict(line), "no false negative allowed");
    }

    #[test]
    fn positive_feedback_is_a_no_op() {
        let mut p = SupersetPredictor::y2k();
        p.supplier_gained(LineAddr(7));
        p.feedback(LineAddr(7), true);
        assert!(p.predict(LineAddr(7)));
    }

    #[test]
    fn bare_filter_has_no_exclude() {
        let mut p = SupersetPredictor::bare(BloomSpec::n_filter());
        let tracked = LineAddr(0x123);
        let alias = LineAddr(0x123 | (1 << 40));
        p.supplier_gained(tracked);
        p.feedback(alias, false); // nowhere to learn
        assert!(p.predict(alias), "without an exclude cache the FP persists");
    }

    #[test]
    fn table4_total_sizes() {
        // Paper: Superset predictors are ~7.3 KB total with the 2K exclude.
        let kb = SupersetPredictor::y2k().storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb - 7.3).abs() < 0.4, "y2k = {kb:.2} KB");
    }

    #[test]
    fn loss_makes_unaliased_line_negative() {
        let mut p = SupersetPredictor::y2k();
        p.supplier_gained(LineAddr(5));
        p.supplier_lost(LineAddr(5));
        assert!(!p.predict(LineAddr(5)));
    }
}
