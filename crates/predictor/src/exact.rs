//! The Exact supplier predictor (paper §4.3.3).
//!
//! Built on the Subset table, with false negatives eliminated by force:
//! whenever inserting a newly-gained supplier line evicts a victim from the
//! predictor table, the predictor demands that the protocol **downgrade**
//! the victim line in the CMP — `SG`/`E` silently become `SL`; `D`/`T` are
//! written back to memory and kept in `SL`. After the downgrade the CMP
//! genuinely cannot supply the victim, so the table is exact: the tracked
//! set *is* the supplier set.
//!
//! The downgrades are also where Exact's costs come from: later reads of a
//! downgraded line must go to memory, and dirty victims pay a write-back
//! plus eventual re-read (Figure 9's 3.2× energy on SPLASH-2).

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::{CacheGeometry, LineAddr, SetAssocCache};

use crate::{PredictorCounters, SupplierPredictor};

/// Exact predictor: a supplier-address table kept exact via downgrades.
///
/// # Example
///
/// ```
/// use flexsnoop_mem::LineAddr;
/// use flexsnoop_predictor::{ExactPredictor, SupplierPredictor};
///
/// let mut p = ExactPredictor::exa2k();
/// assert_eq!(p.supplier_gained(LineAddr(1)), None);
/// assert!(p.predict(LineAddr(1)));
/// ```
#[derive(Debug, Clone)]
pub struct ExactPredictor {
    table: SetAssocCache<()>,
    entry_bits: usize,
    counters: PredictorCounters,
    downgrades: u64,
}

impl ExactPredictor {
    /// Creates a predictor with the given geometry and per-entry tag width.
    pub fn new(geometry: CacheGeometry, entry_bits: usize) -> Self {
        Self {
            table: SetAssocCache::new(geometry),
            entry_bits,
            counters: PredictorCounters::default(),
            downgrades: 0,
        }
    }

    /// The paper's `Exa512` configuration (512 entries, 8-way).
    pub fn exa512() -> Self {
        Self::new(CacheGeometry::from_entries(512, 8), 20)
    }

    /// The paper's `Exa2k` configuration (2K entries, 8-way).
    pub fn exa2k() -> Self {
        Self::new(CacheGeometry::from_entries(2048, 8), 18)
    }

    /// The paper's `Exa8k` configuration (8K entries, 8-way).
    pub fn exa8k() -> Self {
        Self::new(CacheGeometry::from_entries(8192, 8), 16)
    }

    /// Number of downgrades this predictor has demanded.
    pub fn downgrades(&self) -> u64 {
        self.downgrades
    }

    /// Number of lines currently tracked.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Snapshot for ExactPredictor {
    fn save_into(&self, w: &mut SnapWriter) {
        self.table.save_into_with(w, |_, _| {});
        self.counters.save_into(w);
        w.put_u64(self.downgrades);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.table.restore_from_with(r, |_| Ok(()))?;
        self.counters.restore_from(r)?;
        self.downgrades = r.get_u64()?;
        Ok(())
    }
}

impl SupplierPredictor for ExactPredictor {
    fn predict(&mut self, line: LineAddr) -> bool {
        self.counters.lookups += 1;
        self.table.get(line).is_some()
    }

    fn supplier_gained(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.counters.trainings += 1;
        let victim = self.table.insert(line, ()).map(|(l, ())| l);
        if victim.is_some() {
            self.downgrades += 1;
        }
        victim
    }

    fn supplier_lost(&mut self, line: LineAddr) {
        self.counters.trainings += 1;
        self.table.remove(line);
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }

    fn storage_bits(&self) -> usize {
        self.table.geometry().entries() * (self.entry_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExactPredictor {
        ExactPredictor::new(CacheGeometry::from_entries(4, 2), 20)
    }

    #[test]
    fn conflict_demands_downgrade_of_victim() {
        let mut p = tiny();
        // Lines 0, 2, 4 share set 0 of the 2-set, 2-way table.
        assert_eq!(p.supplier_gained(LineAddr(0)), None);
        assert_eq!(p.supplier_gained(LineAddr(2)), None);
        let victim = p.supplier_gained(LineAddr(4));
        assert_eq!(victim, Some(LineAddr(0)), "LRU victim must be downgraded");
        assert_eq!(p.downgrades(), 1);
    }

    #[test]
    fn table_is_exact_after_downgrade() {
        let mut p = tiny();
        p.supplier_gained(LineAddr(0));
        p.supplier_gained(LineAddr(2));
        let victim = p.supplier_gained(LineAddr(4)).unwrap();
        // The protocol downgrades `victim` and (per supplier_lost contract)
        // the line is already absent from the table.
        assert!(!p.predict(victim));
        assert!(p.predict(LineAddr(2)));
        assert!(p.predict(LineAddr(4)));
    }

    #[test]
    fn lookups_refresh_lru() {
        let mut p = tiny();
        p.supplier_gained(LineAddr(0));
        p.supplier_gained(LineAddr(2));
        p.predict(LineAddr(0)); // keep line 0 warm
        let victim = p.supplier_gained(LineAddr(4)).unwrap();
        assert_eq!(victim, LineAddr(2));
    }

    #[test]
    fn loss_removes_tracking() {
        let mut p = tiny();
        p.supplier_gained(LineAddr(6));
        p.supplier_lost(LineAddr(6));
        assert!(!p.predict(LineAddr(6)));
        assert!(p.is_empty());
    }

    #[test]
    fn no_downgrade_without_conflict() {
        let mut p = ExactPredictor::exa2k();
        for i in 0..2048u64 {
            assert_eq!(p.supplier_gained(LineAddr(i)), None, "no conflicts yet");
        }
        assert_eq!(p.downgrades(), 0);
        assert_eq!(p.len(), 2048);
    }

    #[test]
    fn paper_sizes() {
        let kb = |p: &ExactPredictor| p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb(&ExactPredictor::exa512()) - 1.3).abs() < 0.1);
        assert!((kb(&ExactPredictor::exa2k()) - 4.8).abs() < 0.2);
        assert!((kb(&ExactPredictor::exa8k()) - 17.0).abs() < 0.5);
    }
}
