//! Counting Bloom filter over line addresses (paper §4.3.2, Table 4).
//!
//! The filter splits the line address into `P` consecutive bit fields; each
//! field indexes its own table of counters. A counter tracks how many
//! tracked lines share that bit combination. A line is *possibly present*
//! iff all `P` of its counters are non-zero, so the filter can yield false
//! positives (aliasing) but never false negatives.
//!
//! Table 4 specifies the two evaluated geometries: the `y` filter with
//! fields of 10, 4 and 7 bits (2.5 KB) and the `n` filter with 9, 9 and
//! 6 bits (2.3 KB); counters are 16 bits plus a zero-indicator bit.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::LineAddr;

/// Bit-field geometry of a Bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomSpec {
    /// Widths, in bits, of the consecutive address fields, lowest first.
    pub field_bits: Vec<u32>,
    /// Width of each counter in bits (16 in the paper; counters saturate).
    pub counter_bits: u32,
}

impl BloomSpec {
    /// The paper's `y` filter: fields of 10, 4 and 7 bits (Table 4).
    pub fn y_filter() -> Self {
        BloomSpec {
            field_bits: vec![10, 4, 7],
            counter_bits: 16,
        }
    }

    /// The paper's `n` filter: fields of 9, 9 and 6 bits (Table 4).
    pub fn n_filter() -> Self {
        BloomSpec {
            field_bits: vec![9, 9, 6],
            counter_bits: 16,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message if there are no fields, a field is empty or wider
    /// than 32 bits, or counters are narrower than 2 bits.
    pub fn validate(&self) -> Result<(), String> {
        if self.field_bits.is_empty() {
            return Err("bloom filter needs at least one field".into());
        }
        if self.field_bits.iter().any(|&b| b == 0 || b > 32) {
            return Err("bloom field widths must be in 1..=32".into());
        }
        if self.counter_bits < 2 {
            return Err("bloom counters need at least 2 bits".into());
        }
        Ok(())
    }

    /// Total storage in bits (counters plus the per-entry zero bit).
    pub fn storage_bits(&self) -> usize {
        self.field_bits
            .iter()
            .map(|&b| (1usize << b) * (self.counter_bits as usize + 1))
            .sum()
    }
}

/// A counting Bloom filter tracking a multiset of line addresses.
///
/// # Example
///
/// ```
/// use flexsnoop_mem::LineAddr;
/// use flexsnoop_predictor::{BloomFilter, BloomSpec};
///
/// let mut f = BloomFilter::new(BloomSpec::y_filter());
/// f.insert(LineAddr(0xabc));
/// assert!(f.may_contain(LineAddr(0xabc))); // never a false negative
/// f.remove(LineAddr(0xabc));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    spec: BloomSpec,
    tables: Vec<Vec<u32>>,
    saturation: u32,
}

impl BloomFilter {
    /// Creates an empty filter.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid (see [`BloomSpec::validate`]).
    pub fn new(spec: BloomSpec) -> Self {
        spec.validate().expect("invalid bloom spec");
        let tables = spec
            .field_bits
            .iter()
            .map(|&b| vec![0u32; 1 << b])
            .collect();
        let saturation = if spec.counter_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << spec.counter_bits) - 1
        };
        Self {
            spec,
            tables,
            saturation,
        }
    }

    /// The geometry of this filter.
    pub fn spec(&self) -> &BloomSpec {
        &self.spec
    }

    fn indices(&self, line: LineAddr) -> impl Iterator<Item = (usize, usize)> + '_ {
        let mut lo = 0u32;
        self.spec.field_bits.iter().enumerate().map(move |(t, &b)| {
            let idx = line.bits(lo, b) as usize;
            lo += b;
            (t, idx)
        })
    }

    /// Adds one occurrence of `line`.
    pub fn insert(&mut self, line: LineAddr) {
        let mut lo = 0u32;
        for (t, &b) in self.spec.field_bits.iter().enumerate() {
            let i = line.bits(lo, b) as usize;
            lo += b;
            let c = &mut self.tables[t][i];
            // Saturating: a saturated counter is never decremented again, so
            // the no-false-negative guarantee survives overflow.
            if *c < self.saturation {
                *c += 1;
            }
        }
    }

    /// Removes one occurrence of `line`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a counter would underflow, which means the
    /// caller removed a line it never inserted.
    pub fn remove(&mut self, line: LineAddr) {
        let mut lo = 0u32;
        for (t, &b) in self.spec.field_bits.iter().enumerate() {
            let i = line.bits(lo, b) as usize;
            lo += b;
            let c = &mut self.tables[t][i];
            debug_assert!(*c > 0, "bloom underflow for {line}");
            if *c > 0 && *c < self.saturation {
                *c -= 1;
            }
        }
    }

    /// Whether `line` may be present (no false negatives; false positives
    /// possible through aliasing).
    pub fn may_contain(&self, line: LineAddr) -> bool {
        self.indices(line).all(|(t, i)| self.tables[t][i] > 0)
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> usize {
        self.spec.storage_bits()
    }
}

/// Serializes the counter tables; the spec (and the saturation bound it
/// implies) is configuration, rebuilt on the restore target, which also
/// fixes the table lengths — restoring onto a mismatched spec misaligns
/// the stream and fails the enclosing snapshot's end-of-stream check.
impl Snapshot for BloomFilter {
    fn save_into(&self, w: &mut SnapWriter) {
        for table in &self.tables {
            for &c in table {
                w.put_u32(c);
            }
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        for table in &mut self.tables {
            for c in table {
                *c = r.get_u32()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_filter_sizes() {
        // Paper: y filter 2.5 KB, n filter 2.3 KB, with 16-bit counters + zero bit.
        let y = BloomSpec::y_filter().storage_bits() as f64 / 8.0 / 1024.0;
        let n = BloomSpec::n_filter().storage_bits() as f64 / 8.0 / 1024.0;
        assert!((y - 2.44).abs() < 0.2, "y filter = {y:.2} KB");
        assert!((n - 2.30).abs() < 0.2, "n filter = {n:.2} KB");
    }

    #[test]
    fn insert_then_contains() {
        let mut f = BloomFilter::new(BloomSpec::n_filter());
        assert!(!f.may_contain(LineAddr(42)));
        f.insert(LineAddr(42));
        assert!(f.may_contain(LineAddr(42)));
    }

    #[test]
    fn remove_clears_unaliased_line() {
        let mut f = BloomFilter::new(BloomSpec::n_filter());
        f.insert(LineAddr(42));
        f.remove(LineAddr(42));
        assert!(!f.may_contain(LineAddr(42)));
    }

    #[test]
    fn multiset_semantics() {
        let mut f = BloomFilter::new(BloomSpec::n_filter());
        // Two different lines that alias in the low field still resolve
        // correctly because counters count.
        let a = LineAddr(0x1);
        let b = LineAddr(0x1 | (1 << 30)); // same low bits, different high bits
        f.insert(a);
        f.insert(b);
        f.remove(a);
        assert!(f.may_contain(b));
    }

    #[test]
    fn aliasing_produces_false_positive() {
        // One field of 4 bits: any two lines equal mod 16 alias completely.
        let mut f = BloomFilter::new(BloomSpec {
            field_bits: vec![4],
            counter_bits: 16,
        });
        f.insert(LineAddr(0x5));
        assert!(f.may_contain(LineAddr(0x15)), "aliased line reads present");
    }

    #[test]
    fn never_false_negative_under_churn() {
        let mut f = BloomFilter::new(BloomSpec::y_filter());
        let live: Vec<LineAddr> = (0..500).map(|i| LineAddr(i * 37 + 1)).collect();
        for &l in &live {
            f.insert(l);
        }
        for i in 0..500u64 {
            f.insert(LineAddr(i * 91 + 7));
            f.remove(LineAddr(i * 91 + 7));
        }
        for &l in &live {
            assert!(f.may_contain(l), "false negative for {l}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid bloom spec")]
    fn empty_spec_rejected() {
        BloomFilter::new(BloomSpec {
            field_bits: vec![],
            counter_bits: 16,
        });
    }
}
