//! Declarative predictor configurations.
//!
//! The evaluation sweeps twelve named predictor configurations (paper §5.2):
//! `Sub512/Sub2k/Sub8k`, `SupCy512/SupCy2k/SupCn2k` (shared with the
//! aggressive variants `SupAy512/SupAy2k/SupAn2k` — Con and Agg differ only
//! in the *action* taken, not the predictor), and `Exa512/Exa2k/Exa8k`.
//! [`PredictorSpec`] names them declaratively so experiment configs stay
//! plain data.

use std::fmt;

use flexsnoop_mem::CacheGeometry;

use crate::bloom::BloomSpec;
use crate::{
    ExactPredictor, NullPredictor, PerfectPredictor, SubsetPredictor, SupersetPredictor,
    SupplierPredictor,
};

/// Which Bloom filter geometry a Superset predictor uses (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BloomVariant {
    /// Fields of 10, 4 and 7 bits ("y filter", 2.5 KB).
    Y,
    /// Fields of 9, 9 and 6 bits ("n filter", 2.3 KB).
    N,
}

impl BloomVariant {
    fn spec(self) -> BloomSpec {
        match self {
            BloomVariant::Y => BloomSpec::y_filter(),
            BloomVariant::N => BloomSpec::n_filter(),
        }
    }
}

/// A buildable description of a supplier predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorSpec {
    /// No predictor (Lazy, Eager, Oracle).
    None,
    /// Subset cache with the given entry count (8-way).
    Subset {
        /// Table entries (512, 2048 or 8192 in the paper).
        entries: usize,
    },
    /// Counting Bloom filter plus Exclude cache.
    Superset {
        /// Bloom geometry.
        bloom: BloomVariant,
        /// Exclude-cache entries (0 disables the Exclude cache).
        exclude_entries: usize,
    },
    /// Exact table (downgrades on conflict) with the given entry count.
    Exact {
        /// Table entries.
        entries: usize,
    },
    /// The evaluation-only oracle.
    Perfect,
}

impl PredictorSpec {
    /// The paper's `Sub512` configuration.
    pub const SUB512: Self = PredictorSpec::Subset { entries: 512 };
    /// The paper's `Sub2k` configuration.
    pub const SUB2K: Self = PredictorSpec::Subset { entries: 2048 };
    /// The paper's `Sub8k` configuration.
    pub const SUB8K: Self = PredictorSpec::Subset { entries: 8192 };
    /// The paper's `y512` Superset configuration.
    pub const SUP_Y512: Self = PredictorSpec::Superset {
        bloom: BloomVariant::Y,
        exclude_entries: 512,
    };
    /// The paper's `y2k` Superset configuration (the §6.1 default).
    pub const SUP_Y2K: Self = PredictorSpec::Superset {
        bloom: BloomVariant::Y,
        exclude_entries: 2048,
    };
    /// The paper's `n2k` Superset configuration.
    pub const SUP_N2K: Self = PredictorSpec::Superset {
        bloom: BloomVariant::N,
        exclude_entries: 2048,
    };
    /// The paper's `Exa512` configuration.
    pub const EXA512: Self = PredictorSpec::Exact { entries: 512 };
    /// The paper's `Exa2k` configuration.
    pub const EXA2K: Self = PredictorSpec::Exact { entries: 2048 };
    /// The paper's `Exa8k` configuration.
    pub const EXA8K: Self = PredictorSpec::Exact { entries: 8192 };

    /// Tag width used by the paper for a table of `entries` entries
    /// (Table 4: 20, 18 or 16 bits for 512, 2K, 8K).
    pub(crate) fn entry_bits(entries: usize) -> usize {
        match entries {
            0..=512 => 20,
            513..=2048 => 18,
            _ => 16,
        }
    }

    /// Builds the predictor this spec describes.
    pub fn build(&self) -> Box<dyn SupplierPredictor + Send> {
        match *self {
            PredictorSpec::None => Box::new(NullPredictor),
            PredictorSpec::Subset { entries } => Box::new(SubsetPredictor::new(
                CacheGeometry::from_entries(entries, 8),
                Self::entry_bits(entries),
            )),
            PredictorSpec::Superset {
                bloom,
                exclude_entries,
            } => {
                let exclude = (exclude_entries > 0).then(|| {
                    (
                        CacheGeometry::from_entries(exclude_entries, 8),
                        Self::entry_bits(exclude_entries),
                    )
                });
                Box::new(SupersetPredictor::new(bloom.spec(), exclude))
            }
            PredictorSpec::Exact { entries } => Box::new(ExactPredictor::new(
                CacheGeometry::from_entries(entries, 8),
                Self::entry_bits(entries),
            )),
            PredictorSpec::Perfect => Box::new(PerfectPredictor::new()),
        }
    }
}

impl fmt::Display for PredictorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PredictorSpec::None => write!(f, "none"),
            PredictorSpec::Subset { entries } => write!(f, "Sub{}", fmt_entries(entries)),
            PredictorSpec::Superset {
                bloom,
                exclude_entries,
            } => {
                let b = match bloom {
                    BloomVariant::Y => "y",
                    BloomVariant::N => "n",
                };
                write!(f, "Sup{b}{}", fmt_entries(exclude_entries))
            }
            PredictorSpec::Exact { entries } => write!(f, "Exa{}", fmt_entries(entries)),
            PredictorSpec::Perfect => write!(f, "Perfect"),
        }
    }
}

fn fmt_entries(entries: usize) -> String {
    if entries >= 1024 && entries.is_multiple_of(1024) {
        format!("{}k", entries / 1024)
    } else {
        format!("{entries}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsnoop_mem::LineAddr;

    #[test]
    fn builds_every_paper_config() {
        let specs = [
            PredictorSpec::SUB512,
            PredictorSpec::SUB2K,
            PredictorSpec::SUB8K,
            PredictorSpec::SUP_Y512,
            PredictorSpec::SUP_Y2K,
            PredictorSpec::SUP_N2K,
            PredictorSpec::EXA512,
            PredictorSpec::EXA2K,
            PredictorSpec::EXA8K,
            PredictorSpec::Perfect,
            PredictorSpec::None,
        ];
        for spec in specs {
            let mut p = spec.build();
            p.supplier_gained(LineAddr(1));
            let _ = p.predict(LineAddr(1));
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(PredictorSpec::SUB2K.to_string(), "Sub2k");
        assert_eq!(PredictorSpec::SUP_Y512.to_string(), "Supy512");
        assert_eq!(PredictorSpec::SUP_N2K.to_string(), "Supn2k");
        assert_eq!(PredictorSpec::EXA8K.to_string(), "Exa8k");
    }

    #[test]
    fn superset_without_exclude_builds() {
        let spec = PredictorSpec::Superset {
            bloom: BloomVariant::Y,
            exclude_entries: 0,
        };
        let mut p = spec.build();
        p.supplier_gained(LineAddr(3));
        assert!(p.predict(LineAddr(3)));
    }
}
