//! The Subset supplier predictor (paper §4.3.1).
//!
//! A set-associative cache of addresses known to be in supplier states in
//! the CMP. Insertions that conflict overwrite the LRU entry, *silently
//! forgetting* a supplier line — that is where false negatives come from.
//! Evictions and invalidations remove the address, so a positive answer is
//! always right: **no false positives**.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::{CacheGeometry, LineAddr, SetAssocCache};

use crate::{PredictorCounters, SupplierPredictor};

/// Subset predictor: tracks a subset of the CMP's supplier lines.
///
/// # Example
///
/// ```
/// use flexsnoop_mem::{CacheGeometry, LineAddr};
/// use flexsnoop_predictor::{SubsetPredictor, SupplierPredictor};
///
/// let mut p = SubsetPredictor::new(CacheGeometry::from_entries(512, 8), 20);
/// p.supplier_gained(LineAddr(7));
/// assert!(p.predict(LineAddr(7)));
/// p.supplier_lost(LineAddr(7));
/// assert!(!p.predict(LineAddr(7)));
/// ```
#[derive(Debug, Clone)]
pub struct SubsetPredictor {
    table: SetAssocCache<()>,
    entry_bits: usize,
    counters: PredictorCounters,
}

impl SubsetPredictor {
    /// Creates a predictor with the given table geometry and per-entry tag
    /// width in bits (Table 4: 20/18/16 bits for 512/2K/8K entries).
    pub fn new(geometry: CacheGeometry, entry_bits: usize) -> Self {
        Self {
            table: SetAssocCache::new(geometry),
            entry_bits,
            counters: PredictorCounters::default(),
        }
    }

    /// The paper's `Sub512` configuration (512 entries, 8-way, 20-bit tags).
    pub fn sub512() -> Self {
        Self::new(CacheGeometry::from_entries(512, 8), 20)
    }

    /// The paper's `Sub2k` configuration (2K entries, 8-way, 18-bit tags).
    pub fn sub2k() -> Self {
        Self::new(CacheGeometry::from_entries(2048, 8), 18)
    }

    /// The paper's `Sub8k` configuration (8K entries, 8-way, 16-bit tags).
    pub fn sub8k() -> Self {
        Self::new(CacheGeometry::from_entries(8192, 8), 16)
    }

    /// Number of lines currently tracked.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Snapshot for SubsetPredictor {
    fn save_into(&self, w: &mut SnapWriter) {
        self.table.save_into_with(w, |_, _| {});
        self.counters.save_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.table.restore_from_with(r, |_| Ok(()))?;
        self.counters.restore_from(r)
    }
}

impl SupplierPredictor for SubsetPredictor {
    fn predict(&mut self, line: LineAddr) -> bool {
        self.counters.lookups += 1;
        // Prediction refreshes LRU: a line that keeps being asked about is
        // a line worth remembering.
        self.table.get(line).is_some()
    }

    fn supplier_gained(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.counters.trainings += 1;
        // A conflict silently drops the victim from the table: the CMP still
        // holds that line in a supplier state, so a later prediction for it
        // will be a false negative (by design — no downgrade here).
        let _victim = self.table.insert(line, ());
        None
    }

    fn supplier_lost(&mut self, line: LineAddr) {
        self.counters.trainings += 1;
        self.table.remove(line);
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }

    fn storage_bits(&self) -> usize {
        self.table.geometry().entries() * (self.entry_bits + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SubsetPredictor {
        SubsetPredictor::new(CacheGeometry::from_entries(4, 2), 20)
    }

    #[test]
    fn no_false_positives_after_loss() {
        let mut p = tiny();
        p.supplier_gained(LineAddr(1));
        p.supplier_lost(LineAddr(1));
        assert!(!p.predict(LineAddr(1)));
    }

    #[test]
    fn conflict_creates_false_negative() {
        let mut p = tiny();
        // Lines 0, 2, 4 map to set 0 of a 2-set, 2-way table.
        p.supplier_gained(LineAddr(0));
        p.supplier_gained(LineAddr(2));
        p.supplier_gained(LineAddr(4)); // evicts line 0 silently
        assert!(!p.predict(LineAddr(0)), "forgotten line answers negative");
        assert!(p.predict(LineAddr(2)));
        assert!(p.predict(LineAddr(4)));
    }

    #[test]
    fn never_requests_downgrades() {
        let mut p = tiny();
        for i in 0..100u64 {
            assert_eq!(p.supplier_gained(LineAddr(i)), None);
        }
    }

    #[test]
    fn counters_track_activity() {
        let mut p = tiny();
        p.supplier_gained(LineAddr(1));
        p.predict(LineAddr(1));
        p.predict(LineAddr(2));
        p.supplier_lost(LineAddr(1));
        let c = p.counters();
        assert_eq!(c.lookups, 2);
        assert_eq!(c.trainings, 2);
    }

    #[test]
    fn paper_configurations_have_table4_sizes() {
        // Table 4: total size 1.3, 4.8, 17 KB for 512/2K/8K entries.
        let kb = |p: &SubsetPredictor| p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((kb(&SubsetPredictor::sub512()) - 1.3).abs() < 0.1);
        assert!((kb(&SubsetPredictor::sub2k()) - 4.8).abs() < 0.2);
        assert!((kb(&SubsetPredictor::sub8k()) - 17.0).abs() < 0.5);
    }

    #[test]
    fn losing_untracked_line_is_harmless() {
        let mut p = tiny();
        p.supplier_lost(LineAddr(99));
        assert!(p.is_empty());
    }
}
