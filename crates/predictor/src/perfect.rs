//! The perfect supplier predictor (evaluation oracle).
//!
//! Tracks the supplier set exactly with unbounded storage and therefore
//! never errs and never downgrades. Not implementable in hardware at this
//! cost — the paper uses it for Figure 11's "Perfect" bars and the Oracle
//! algorithm's lower bound; so do we.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::FxHashSet;
use flexsnoop_mem::LineAddr;

use crate::{PredictorCounters, SupplierPredictor};

/// A predictor with perfect knowledge of the CMP's supplier lines.
///
/// # Example
///
/// ```
/// use flexsnoop_mem::LineAddr;
/// use flexsnoop_predictor::{PerfectPredictor, SupplierPredictor};
///
/// let mut p = PerfectPredictor::new();
/// p.supplier_gained(LineAddr(9));
/// assert!(p.predict(LineAddr(9)));
/// p.supplier_lost(LineAddr(9));
/// assert!(!p.predict(LineAddr(9)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PerfectPredictor {
    lines: FxHashSet<LineAddr>,
    counters: PredictorCounters,
}

impl PerfectPredictor {
    /// Creates an empty perfect predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of supplier lines currently tracked.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no supplier lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// The tracked set is written in sorted order so snapshots of equal sets
/// are byte-identical regardless of hash-map history.
impl Snapshot for PerfectPredictor {
    fn save_into(&self, w: &mut SnapWriter) {
        let mut lines: Vec<LineAddr> = self.lines.iter().copied().collect();
        lines.sort_unstable();
        w.put_usize(lines.len());
        for line in lines {
            w.put_u64(line.0);
        }
        self.counters.save_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.lines.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            self.lines.insert(LineAddr(r.get_u64()?));
        }
        self.counters.restore_from(r)
    }
}

impl SupplierPredictor for PerfectPredictor {
    fn predict(&mut self, line: LineAddr) -> bool {
        self.counters.lookups += 1;
        self.lines.contains(&line)
    }

    fn supplier_gained(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.counters.trainings += 1;
        self.lines.insert(line);
        None
    }

    fn supplier_lost(&mut self, line: LineAddr) {
        self.counters.trainings += 1;
        self.lines.remove(&line);
    }

    fn counters(&self) -> PredictorCounters {
        self.counters
    }

    fn storage_bits(&self) -> usize {
        // Unbounded structure; report the current footprint (one full line
        // address per tracked line) for curiosity's sake.
        self.lines.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tracking_without_downgrades() {
        let mut p = PerfectPredictor::new();
        for i in 0..10_000u64 {
            assert_eq!(p.supplier_gained(LineAddr(i)), None);
        }
        assert_eq!(p.len(), 10_000);
        for i in 0..10_000u64 {
            assert!(p.predict(LineAddr(i)));
        }
        assert!(!p.predict(LineAddr(10_001)));
    }

    #[test]
    fn loss_is_immediate() {
        let mut p = PerfectPredictor::new();
        p.supplier_gained(LineAddr(5));
        p.supplier_lost(LineAddr(5));
        assert!(p.is_empty());
    }
}
