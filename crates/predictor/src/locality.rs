//! Per-ring supplier **locality** table for hierarchical topologies.
//!
//! Where the Table 3 predictors answer "*can this CMP supply line X?*",
//! the locality table answers a coarser routing question at the
//! requester: "*is line X's supplier probably inside my local ring?*" A
//! positive answer lets the snoop circulation complete locally (a few
//! hops); a negative sends it through the bridge onto the global ring.
//!
//! The table is a direct-mapped array of 2-bit saturating counters
//! indexed by a hash of the line address — the classic bimodal design,
//! sized so a whole group's table costs a few hundred bytes. Counters
//! start *weakly remote*: an untrained line predicts global, which is
//! the correct-by-default direction (a global circulation is always
//! sufficient; a wrong local one costs an extra escalation lap).
//! Training is ground truth observed by the protocol: every supplied
//! read trains toward local or remote depending on where the supplier
//! actually was, and every escalation or memory fill trains remote.
//!
//! Mispredictions are never a correctness problem — a wrong *local*
//! prediction escalates to a full global circulation, preserving the
//! paper's guarantee that a snoop eventually visits every potential
//! supplier — they only cost latency and snoop energy.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_mem::LineAddr;

use crate::PredictorCounters;

/// Default number of counters per table (512 B of 2-bit state).
pub const DEFAULT_LOCALITY_ENTRIES: usize = 2048;

/// Counter value a fresh table starts at: weakly remote.
const WEAK_REMOTE: u8 = 1;
/// Counter values `>= LOCAL_THRESHOLD` predict local.
const LOCAL_THRESHOLD: u8 = 2;
/// Saturation bound of the 2-bit counters.
const MAX_COUNT: u8 = 3;

/// A per-group locality table of 2-bit saturating counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalityTable {
    counters: Vec<u8>,
    stats: PredictorCounters,
}

impl LocalityTable {
    /// Creates a table of `entries` counters, all weakly remote.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two (the index is a mask).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "locality table size must be a power of two"
        );
        LocalityTable {
            counters: vec![WEAK_REMOTE; entries],
            stats: PredictorCounters::default(),
        }
    }

    /// The counter index for `line` (Fibonacci multiplicative hash).
    #[inline]
    fn index(&self, line: LineAddr) -> usize {
        let h = line.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.counters.len() - 1)
    }

    /// Whether the supplier of `line` is predicted to be in-ring.
    pub fn predict_local(&mut self, line: LineAddr) -> bool {
        self.stats.lookups += 1;
        self.counters[self.index(line)] >= LOCAL_THRESHOLD
    }

    /// Trains the counter for `line` toward the observed outcome.
    pub fn train(&mut self, line: LineAddr, was_local: bool) {
        self.stats.trainings += 1;
        let idx = self.index(line);
        let c = &mut self.counters[idx];
        if was_local {
            *c = (*c + 1).min(MAX_COUNT);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Lookup/training event counts (for the energy model).
    pub fn counters(&self) -> PredictorCounters {
        self.stats
    }

    /// Modeled hardware cost: 2 bits per counter.
    pub fn storage_bits(&self) -> u64 {
        self.counters.len() as u64 * 2
    }

    /// Estimated heap footprint of the model (one byte per counter).
    pub fn footprint_bytes(&self) -> u64 {
        (size_of::<Self>() + self.counters.capacity()) as u64
    }
}

impl Snapshot for LocalityTable {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.counters.len());
        for &c in &self.counters {
            w.put_u8(c);
        }
        self.stats.save_into(w);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.get_usize()? != self.counters.len() {
            return Err(SnapError::Corrupt(
                "locality-table size does not match config",
            ));
        }
        for c in &mut self.counters {
            *c = r.get_u8()?;
            if *c > MAX_COUNT {
                return Err(SnapError::Corrupt("locality counter out of range"));
            }
        }
        self.stats.restore_from(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_predicts_remote() {
        let mut t = LocalityTable::new(64);
        for line in 0..200 {
            assert!(!t.predict_local(LineAddr(line)), "line {line}");
        }
        assert_eq!(t.counters().lookups, 200);
    }

    #[test]
    fn one_local_observation_flips_the_prediction() {
        // Weakly-remote start: a single local supply crosses the
        // threshold, a single remote observation drops back below it.
        let mut t = LocalityTable::new(64);
        let line = LineAddr(7);
        t.train(line, true);
        assert!(t.predict_local(line));
        t.train(line, false);
        assert!(!t.predict_local(line));
        assert_eq!(t.counters().trainings, 2);
    }

    #[test]
    fn counters_saturate_in_both_directions() {
        let mut t = LocalityTable::new(64);
        let line = LineAddr(42);
        for _ in 0..10 {
            t.train(line, true);
        }
        // Saturated local: takes two remote observations to flip.
        t.train(line, false);
        assert!(t.predict_local(line), "hysteresis after saturation");
        t.train(line, false);
        assert!(!t.predict_local(line));
        for _ in 0..10 {
            t.train(line, false);
        }
        assert!(!t.predict_local(line), "saturates at zero without wrap");
    }

    #[test]
    fn snapshot_round_trips_counters_and_stats() {
        let mut t = LocalityTable::new(128);
        for line in 0..500u64 {
            t.train(LineAddr(line), line % 3 == 0);
            t.predict_local(LineAddr(line));
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&t);
        let mut fresh = LocalityTable::new(128);
        flexsnoop_engine::snap::restore_bytes(&mut fresh, &bytes).unwrap();
        assert_eq!(fresh, t);
        // A differently-sized table refuses the stream.
        let mut wrong = LocalityTable::new(64);
        assert!(flexsnoop_engine::snap::restore_bytes(&mut wrong, &bytes).is_err());
    }

    #[test]
    fn storage_is_two_bits_per_entry() {
        let t = LocalityTable::new(DEFAULT_LOCALITY_ENTRIES);
        assert_eq!(t.storage_bits(), 2 * DEFAULT_LOCALITY_ENTRIES as u64);
    }
}
