//! The line-oriented scenario text format.
//!
//! One directive per line; `#` starts a comment. The grammar mirrors
//! the builder exactly:
//!
//! ```text
//! name partition-heal
//! nodes 8
//! topology hier:4x4
//! seed 42
//! phase migratory accesses=600 lines=64 hot=0 writes=0.3 think=20..60
//! phase profile specweb accesses=200
//! phase trace recorded.trace
//! chaos seed=9 budget=12
//! partition 0-3|4-7 from=8000 until=20000
//! churn node=2 remove=6000 readd=14000
//! churn node=5 remove=9000 readd=18000 warm
//! expect all-retired
//! expect recovers-within 40000
//! ```
//!
//! Partition islands are `|`-separated node groups (group order is the
//! island id); each group is a comma list of nodes or `a-b` ranges.
//! Nodes not named by any group stay on island 0. `topology` accepts
//! `flat` (the default) or `hier:<local>x<groups>`; the hierarchical
//! form also fixes the node count to `local × groups`.

use std::str::FromStr;

use flexsnoop::ChurnWindow;
use flexsnoop_engine::Cycle;
use flexsnoop_mem::CmpId;
use flexsnoop_net::PartitionWindow;
use flexsnoop_workload::{PoolKind, Trace};

use crate::{ChaosSpec, Expectation, PhaseSpec, Scenario};

fn pool_kind_name(kind: PoolKind) -> &'static str {
    match kind {
        PoolKind::Private => "private",
        PoolKind::SharedRo => "shared-ro",
        PoolKind::ProducerConsumer => "producer-consumer",
        PoolKind::Migratory => "migratory",
        PoolKind::Streaming => "streaming",
    }
}

fn parse_pool_kind(name: &str) -> Option<PoolKind> {
    Some(match name {
        "private" => PoolKind::Private,
        "shared-ro" => PoolKind::SharedRo,
        "producer-consumer" => PoolKind::ProducerConsumer,
        "migratory" => PoolKind::Migratory,
        "streaming" => PoolKind::Streaming,
        _ => return None,
    })
}

/// `key=value` tokens (plus bare flags) after a directive keyword.
struct KvArgs<'a> {
    directive: &'a str,
    pairs: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> KvArgs<'a> {
    fn parse(directive: &'a str, tokens: &[&'a str]) -> Self {
        let pairs = tokens
            .iter()
            .map(|t| match t.split_once('=') {
                Some((k, v)) => (k, Some(v)),
                None => (*t, None),
            })
            .collect();
        Self { directive, pairs }
    }

    fn value(&self, key: &str) -> Result<&'a str, String> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .and_then(|(_, v)| *v)
            .ok_or_else(|| format!("`{}` needs `{key}=…`", self.directive))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        self.value(key)?
            .parse()
            .map_err(|_| format!("`{}`: {key} expects a number", self.directive))
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.pairs.iter().find(|(k, _)| *k == key) {
            Some(_) => self.u64(key),
            None => Ok(default),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.pairs.iter().find(|(k, _)| *k == key) {
            Some((_, Some(v))) => v
                .parse()
                .map_err(|_| format!("`{}`: {key} expects a number", self.directive)),
            Some((_, None)) => Err(format!("`{}` needs `{key}=…`", self.directive)),
            None => Ok(default),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, v)| *k == key && v.is_none())
    }
}

/// Parses a `topology` value: `flat` means no hierarchy, `hier:<l>x<g>`
/// means `g` local rings of `l` nodes bridged by a global ring.
fn parse_topology(value: &str) -> Result<Option<(usize, usize)>, String> {
    if value == "flat" {
        return Ok(None);
    }
    let shape = value
        .strip_prefix("hier:")
        .ok_or_else(|| format!("topology expects `flat` or `hier:<l>x<g>`, got `{value}`"))?;
    let (local, groups) = shape
        .split_once('x')
        .ok_or_else(|| format!("bad hierarchy shape `{shape}` (expected `<l>x<g>`)"))?;
    let parse = |s: &str| {
        s.parse::<usize>()
            .map_err(|_| format!("bad hierarchy shape `{shape}` (expected `<l>x<g>`)"))
    };
    Ok(Some((parse(local)?, parse(groups)?)))
}

/// Parses `a..b` think ranges.
fn parse_think(text: &str) -> Result<(u64, u64), String> {
    let (lo, hi) = text
        .split_once("..")
        .ok_or_else(|| format!("think range expects `lo..hi`, got `{text}`"))?;
    let parse = |s: &str| {
        s.parse::<u64>()
            .map_err(|_| format!("bad think range `{text}`"))
    };
    Ok((parse(lo)?, parse(hi)?))
}

/// Parses `0-3|4-7` island groups into the per-node island vector
/// (group order is the island id).
fn parse_islands(text: &str) -> Result<Vec<usize>, String> {
    let mut islands: Vec<usize> = Vec::new();
    for (island, group) in text.split('|').enumerate() {
        for item in group.split(',') {
            let (lo, hi) = match item.split_once('-') {
                Some((a, b)) => (a, b),
                None => (item, item),
            };
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad partition group `{text}`"))
            };
            let (lo, hi) = (parse(lo)?, parse(hi)?);
            if lo > hi {
                return Err(format!("bad partition range `{item}`"));
            }
            for node in lo..=hi {
                if islands.len() <= node {
                    islands.resize(node + 1, 0);
                }
                islands[node] = island;
            }
        }
    }
    Ok(islands)
}

/// Renders the island vector back into `|`-separated groups with
/// compact ranges. Empty islands are skipped, so island ids are
/// canonicalized to group order.
fn render_islands(islands: &[usize]) -> String {
    let max = islands.iter().copied().max().unwrap_or(0);
    let mut groups = Vec::new();
    for island in 0..=max {
        let nodes: Vec<usize> = (0..islands.len())
            .filter(|&n| islands[n] == island)
            .collect();
        if nodes.is_empty() {
            continue;
        }
        let mut runs: Vec<String> = Vec::new();
        let mut i = 0;
        while i < nodes.len() {
            let start = nodes[i];
            let mut end = start;
            while i + 1 < nodes.len() && nodes[i + 1] == end + 1 {
                i += 1;
                end = nodes[i];
            }
            runs.push(if start == end {
                format!("{start}")
            } else {
                format!("{start}-{end}")
            });
            i += 1;
        }
        groups.push(runs.join(","));
    }
    groups.join("|")
}

impl Scenario {
    /// Parses the text format. Trace phases are rejected — use
    /// [`Scenario::parse_with`] and supply a loader (the CLI loads them
    /// relative to the scenario file).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        Self::parse_with(text, &mut |path| {
            Err(format!(
                "trace phase `{path}` needs a loader (parse the scenario through the CLI)"
            ))
        })
    }

    /// Parses the text format, loading trace phases through `load`
    /// (path → trace text).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line, or the
    /// loader's error for an unreadable trace.
    pub fn parse_with(
        text: &str,
        load: &mut dyn FnMut(&str) -> Result<String, String>,
    ) -> Result<Scenario, String> {
        let mut s = Scenario {
            name: String::new(),
            nodes: 8,
            hier: None,
            seed: 42,
            phases: Vec::new(),
            chaos: None,
            partitions: Vec::new(),
            churn: Vec::new(),
            expectations: Vec::new(),
        };
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |e: String| format!("line {}: {e}", no + 1);
            let tokens: Vec<&str> = line.split_whitespace().collect();
            let rest = &tokens[1..];
            match tokens[0] {
                "name" => s.name = rest.join(" "),
                "nodes" => {
                    s.nodes = rest
                        .first()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("`nodes` expects a number".into()))?;
                }
                "topology" => {
                    let value = rest
                        .first()
                        .ok_or_else(|| err("`topology` expects `flat` or `hier:<l>x<g>`".into()))?;
                    s.hier = parse_topology(value).map_err(err)?;
                    if let Some((local, groups)) = s.hier {
                        s.nodes = local * groups;
                    }
                }
                "seed" => {
                    s.seed = rest
                        .first()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("`seed` expects a number".into()))?;
                }
                "phase" => {
                    let kind = rest
                        .first()
                        .ok_or_else(|| err("`phase` needs a kind".into()))?;
                    let phase = match *kind {
                        "profile" => {
                            let name = rest
                                .get(1)
                                .ok_or_else(|| err("`phase profile` needs a name".into()))?;
                            let kv = KvArgs::parse("phase profile", &rest[2..]);
                            PhaseSpec::Profile {
                                name: name.to_string(),
                                accesses: kv.u64("accesses").map_err(err)?,
                            }
                        }
                        "trace" => {
                            let path = rest
                                .get(1)
                                .ok_or_else(|| err("`phase trace` needs a path".into()))?;
                            let trace_text = load(path).map_err(err)?;
                            PhaseSpec::Trace {
                                path: path.to_string(),
                                trace: Trace::from_str(&trace_text).map_err(err)?,
                            }
                        }
                        pool => {
                            let kind = parse_pool_kind(pool)
                                .ok_or_else(|| err(format!("unknown phase kind `{pool}`")))?;
                            let kv = KvArgs::parse("phase", &rest[1..]);
                            PhaseSpec::Pool {
                                kind,
                                accesses: kv.u64("accesses").map_err(err)?,
                                lines: kv.u64_or("lines", 64).map_err(err)?,
                                hot: kv.f64_or("hot", 0.0).map_err(err)?,
                                writes: kv.f64_or("writes", 0.3).map_err(err)?,
                                think: match kv.value("think") {
                                    Ok(t) => parse_think(t).map_err(err)?,
                                    Err(_) => (20, 60),
                                },
                            }
                        }
                    };
                    s.phases.push(phase);
                }
                "chaos" => {
                    let kv = KvArgs::parse("chaos", rest);
                    s.chaos = Some(ChaosSpec {
                        seed: kv.u64("seed").map_err(err)?,
                        budget: kv.u64("budget").map_err(err)?,
                    });
                }
                "partition" => {
                    let groups = rest
                        .first()
                        .ok_or_else(|| err("`partition` needs island groups".into()))?;
                    let kv = KvArgs::parse("partition", &rest[1..]);
                    s.partitions.push(PartitionWindow {
                        islands: parse_islands(groups).map_err(err)?,
                        from: Cycle::new(kv.u64("from").map_err(err)?),
                        until: Cycle::new(kv.u64("until").map_err(err)?),
                    });
                }
                "churn" => {
                    let kv = KvArgs::parse("churn", rest);
                    s.churn.push(ChurnWindow {
                        node: CmpId(kv.u64("node").map_err(err)? as usize),
                        remove_at: Cycle::new(kv.u64("remove").map_err(err)?),
                        readd_at: Cycle::new(kv.u64("readd").map_err(err)?),
                        warm: kv.flag("warm"),
                    });
                }
                "expect" => {
                    s.expectations
                        .push(Expectation::parse(&rest.join(" ")).map_err(err)?);
                }
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }
        // Nodes a partition line left unnamed stay on island 0.
        for p in &mut s.partitions {
            if p.islands.len() < s.nodes {
                p.islands.resize(s.nodes, 0);
            }
        }
        s.validate()?;
        Ok(s)
    }

    /// Renders the text format [`Scenario::parse`] accepts (trace
    /// phases render their recorded path).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("nodes {}\n", self.nodes));
        if let Some((local, groups)) = self.hier {
            out.push_str(&format!("topology hier:{local}x{groups}\n"));
        }
        out.push_str(&format!("seed {}\n", self.seed));
        for phase in &self.phases {
            match phase {
                PhaseSpec::Pool {
                    kind,
                    accesses,
                    lines,
                    hot,
                    writes,
                    think,
                } => out.push_str(&format!(
                    "phase {} accesses={accesses} lines={lines} hot={hot} \
                     writes={writes} think={}..{}\n",
                    pool_kind_name(*kind),
                    think.0,
                    think.1
                )),
                PhaseSpec::Profile { name, accesses } => {
                    out.push_str(&format!("phase profile {name} accesses={accesses}\n"));
                }
                PhaseSpec::Trace { path, .. } => {
                    out.push_str(&format!("phase trace {path}\n"));
                }
            }
        }
        if let Some(chaos) = &self.chaos {
            out.push_str(&format!(
                "chaos seed={} budget={}\n",
                chaos.seed, chaos.budget
            ));
        }
        for p in &self.partitions {
            out.push_str(&format!(
                "partition {} from={} until={}\n",
                render_islands(&p.islands),
                p.from.as_u64(),
                p.until.as_u64()
            ));
        }
        for w in &self.churn {
            out.push_str(&format!(
                "churn node={} remove={} readd={}{}\n",
                w.node.0,
                w.remove_at.as_u64(),
                w.readd_at.as_u64(),
                if w.warm { " warm" } else { "" }
            ));
        }
        for e in &self.expectations {
            out.push_str(&format!("expect {e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    #[test]
    fn builtins_round_trip_through_the_text_format() {
        for name in crate::builtin_names() {
            let s = builtin(name).unwrap();
            let parsed = Scenario::parse(&s.render()).unwrap();
            assert_eq!(parsed, s, "{name} round trip");
        }
    }

    #[test]
    fn parses_the_documented_grammar() {
        let text = "\
            # a demo scenario\n\
            name demo\n\
            nodes 8\n\
            seed 7\n\
            phase migratory accesses=100\n\
            phase producer-consumer accesses=50 lines=16 hot=0.8 writes=0.4 think=10..30\n\
            phase profile specweb accesses=25\n\
            chaos seed=3 budget=9\n\
            partition 0-3|4-7 from=1000 until=2000\n\
            churn node=2 remove=500 readd=900 warm\n\
            expect all-retired\n\
            expect recovers-within 5000\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.phases.len(), 3);
        assert_eq!(
            s.phases[1],
            PhaseSpec::Pool {
                kind: PoolKind::ProducerConsumer,
                accesses: 50,
                lines: 16,
                hot: 0.8,
                writes: 0.4,
                think: (10, 30),
            }
        );
        assert_eq!(s.chaos, Some(ChaosSpec { seed: 3, budget: 9 }));
        assert_eq!(s.partitions[0].islands, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(s.churn[0].warm);
        assert_eq!(s.expectations.len(), 2);
        // Render → parse is stable.
        assert_eq!(Scenario::parse(&s.render()).unwrap(), s);
    }

    #[test]
    fn topology_directive_parses_and_fixes_the_node_count() {
        let text = "\
            name h\n\
            topology hier:4x4\n\
            phase migratory accesses=10\n\
            expect all-retired\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.hier, Some((4, 4)));
        assert_eq!(s.nodes, 16, "the shape implies the node count");
        assert_eq!(Scenario::parse(&s.render()).unwrap(), s);
        // `topology flat` is the explicit default.
        let flat = Scenario::parse(&text.replace("hier:4x4", "flat")).unwrap();
        assert_eq!(flat.hier, None);
        assert_eq!(flat.nodes, 8);
        // Malformed and degenerate shapes are named.
        for (bad, needle) in [
            ("topology ring", "flat"),
            ("topology hier:4", "<l>x<g>"),
            ("topology hier:axb", "<l>x<g>"),
            ("topology hier:1x8", "degenerate"),
        ] {
            let err = Scenario::parse(&text.replace("topology hier:4x4", bad)).unwrap_err();
            assert!(err.contains(needle), "{bad}: {err:?}");
        }
    }

    #[test]
    fn trace_phases_go_through_the_loader() {
        let text = "name t\nphase trace demo.trace\nexpect all-retired\n";
        let mut load = |path: &str| {
            assert_eq!(path, "demo.trace");
            Ok("0 r 0x40 5\n1 w 0x80 7\n".to_string())
        };
        let s = Scenario::parse_with(text, &mut load).unwrap();
        match &s.phases[0] {
            PhaseSpec::Trace { path, trace } => {
                assert_eq!(path, "demo.trace");
                assert_eq!(trace.cores(), 2);
            }
            other => panic!("wrong phase: {other:?}"),
        }
        // Without a loader the parse refuses trace phases.
        assert!(Scenario::parse(text).unwrap_err().contains("loader"));
    }

    #[test]
    fn malformed_lines_are_named() {
        let check = |text: &str, needle: &str| {
            let err = Scenario::parse(text).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        };
        check("name x\nfrobnicate 3\n", "unknown directive");
        check("name x\nphase bogus accesses=3\n", "unknown phase kind");
        check("name x\nphase migratory\n", "accesses");
        check("name x\nphase migratory accesses=ten\n", "number");
        check(
            "name x\nphase migratory accesses=1 think=fast\n",
            "think range",
        );
        check("name x\npartition 3-1 from=1 until=2\n", "partition range");
        check("name x\nchurn node=1 remove=5\n", "readd");
        check("name x\nexpect retires\n", "unknown expectation");
    }

    #[test]
    fn island_rendering_is_compact() {
        assert_eq!(render_islands(&[0, 0, 0, 0, 1, 1, 1, 1]), "0-3|4-7");
        assert_eq!(render_islands(&[0, 1, 0, 1]), "0,2|1,3");
        assert_eq!(render_islands(&[1, 0, 0, 0]), "1-3|0");
        assert_eq!(parse_islands("1-3|0").unwrap(), vec![1, 0, 0, 0]);
    }
}
