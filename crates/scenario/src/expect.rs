//! Expectations: post-run health checks a scenario declares up front.
//!
//! An [`Expectation`] is a named predicate over everything observable
//! from one finished run (a [`RunOutcome`]). Scenarios list them
//! declaratively; the runner evaluates every expectation against every
//! algorithm's run and reports one line per broken property. The chaos
//! campaign's historical failure predicate is exactly
//! [`chaos_expectations`] evaluated in order, so a scenario that fails
//! renders the same messages a chaos reproducer does.

use std::collections::BTreeSet;
use std::fmt;

use flexsnoop::{RunStats, Violation};
use flexsnoop_mem::LineAddr;

/// Everything observable from one finished run, in the shape the
/// expectations consume. The runner fills this from the simulator; the
/// chaos campaign fills it from its own outcome record.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final run statistics.
    pub stats: RunStats,
    /// Invariant-oracle violations recorded during the run.
    pub violations: Vec<Violation>,
    /// Result of the final Figure 2(b) coherence sweep.
    pub coherence: Result<(), String>,
    /// Transactions still in flight at the end (must be zero).
    pub in_flight: usize,
    /// Lines still in degraded (Lazy-forwarding) mode at the end.
    pub degraded_lines: u64,
    /// Lines that ended the run dirty (`D`/`T`) anywhere.
    pub dirty_lines: Vec<LineAddr>,
    /// Lines the replayed trace actually wrote.
    pub written: BTreeSet<LineAddr>,
    /// Cycle at which the last scheduled disruption ended: the latest
    /// partition heal or churn re-add (0 when the scenario schedules
    /// neither). Recovery expectations measure from here.
    pub last_disruption_end: u64,
}

/// One declarative post-run health check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Zero invariant-oracle violations and a clean final coherence
    /// sweep.
    CoherenceClean,
    /// Every transaction retired and every core finished its stream.
    AllRetired,
    /// Every read was supplied at least once (cache or memory). Under
    /// faults a retried read may be supplied twice — never less than
    /// once.
    SupplyAccounting,
    /// Only lines the trace wrote may end dirty.
    NoRogueDirty,
    /// No recovery timeout fires more than this many cycles after the
    /// last scheduled disruption ends: the machine must settle.
    RecoversWithin(u64),
    /// At most this many lines may still be degraded (Lazy forwarding)
    /// when the run ends.
    MaxDegradedLines(u64),
    /// After the last degraded line re-arms (probation exit), no retry
    /// may be proven spurious: a healed machine stops second-guessing
    /// itself.
    NoSpuriousRetriesAfterProbation,
}

impl Expectation {
    /// Evaluates the expectation; one line per broken property, empty
    /// when it holds.
    pub fn check(&self, out: &RunOutcome) -> Vec<String> {
        let mut reasons = Vec::new();
        match *self {
            Expectation::CoherenceClean => {
                if let Some(v) = out.violations.first() {
                    reasons.push(format!(
                        "invariant oracle recorded {} violation(s); first: {v}",
                        out.violations.len()
                    ));
                }
                if let Err(e) = &out.coherence {
                    reasons.push(format!("final coherence sweep failed: {e}"));
                }
            }
            Expectation::AllRetired => {
                if out.in_flight > 0 {
                    reasons.push(format!(
                        "{} transaction(s) never retired (lost on the ring)",
                        out.in_flight
                    ));
                }
                let unfinished = out.stats.robustness.unfinished_cores;
                if unfinished > 0 {
                    reasons.push(format!("{unfinished} core(s) stranded mid-stream"));
                }
            }
            Expectation::SupplyAccounting => {
                let s = &out.stats;
                if s.reads_cache_supplied + s.reads_from_memory < s.read_txns {
                    reasons.push(format!(
                        "read supply accounting broken: {} txns > {} cache + {} memory",
                        s.read_txns, s.reads_cache_supplied, s.reads_from_memory
                    ));
                }
            }
            Expectation::NoRogueDirty => {
                let rogue: Vec<LineAddr> = out
                    .dirty_lines
                    .iter()
                    .filter(|l| !out.written.contains(l))
                    .copied()
                    .collect();
                if !rogue.is_empty() {
                    reasons.push(format!("dirty lines never written by the trace: {rogue:?}"));
                }
            }
            Expectation::RecoversWithin(slack) => {
                let last = out.stats.robustness.last_timeout_cycle;
                let deadline = out.last_disruption_end.saturating_add(slack);
                if last > deadline {
                    reasons.push(format!(
                        "recovery not settled within {slack} cycles of the last \
                         disruption: timeout fired at cycle {last}, deadline was {deadline}"
                    ));
                }
            }
            Expectation::MaxDegradedLines(max) => {
                if out.degraded_lines > max {
                    reasons.push(format!(
                        "{} line(s) still degraded at the end of the run (budget: {max})",
                        out.degraded_lines
                    ));
                }
            }
            Expectation::NoSpuriousRetriesAfterProbation => {
                let r = &out.stats.robustness;
                if r.last_probation_exit_cycle > 0
                    && r.last_spurious_retry_cycle > r.last_probation_exit_cycle
                {
                    reasons.push(format!(
                        "spurious retry at cycle {} after the last probation exit at cycle {}",
                        r.last_spurious_retry_cycle, r.last_probation_exit_cycle
                    ));
                }
            }
        }
        reasons
    }

    /// Parses the DSL form: the keyword plus an optional numeric
    /// argument (`recovers-within 30000`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown keyword or bad argument.
    pub fn parse(text: &str) -> Result<Expectation, String> {
        let mut parts = text.split_whitespace();
        let keyword = parts.next().ok_or("empty expectation")?;
        let arg = parts.next();
        if parts.next().is_some() {
            return Err(format!("trailing tokens in expectation `{text}`"));
        }
        let number = |keyword: &str| -> Result<u64, String> {
            arg.ok_or_else(|| format!("expectation `{keyword}` needs a numeric argument"))?
                .parse()
                .map_err(|_| format!("bad numeric argument in expectation `{text}`"))
        };
        let bare = |e: Expectation| -> Result<Expectation, String> {
            match arg {
                None => Ok(e),
                Some(extra) => Err(format!(
                    "expectation `{keyword}` takes no argument, got `{extra}`"
                )),
            }
        };
        match keyword {
            "coherence-clean" => bare(Expectation::CoherenceClean),
            "all-retired" => bare(Expectation::AllRetired),
            "supply-accounting" => bare(Expectation::SupplyAccounting),
            "no-rogue-dirty" => bare(Expectation::NoRogueDirty),
            "no-spurious-retries-after-probation" => {
                bare(Expectation::NoSpuriousRetriesAfterProbation)
            }
            "recovers-within" => Ok(Expectation::RecoversWithin(number(keyword)?)),
            "max-degraded-lines" => Ok(Expectation::MaxDegradedLines(number(keyword)?)),
            other => Err(format!("unknown expectation `{other}`")),
        }
    }
}

/// Renders the DSL form [`Expectation::parse`] accepts.
impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expectation::CoherenceClean => write!(f, "coherence-clean"),
            Expectation::AllRetired => write!(f, "all-retired"),
            Expectation::SupplyAccounting => write!(f, "supply-accounting"),
            Expectation::NoRogueDirty => write!(f, "no-rogue-dirty"),
            Expectation::RecoversWithin(c) => write!(f, "recovers-within {c}"),
            Expectation::MaxDegradedLines(n) => write!(f, "max-degraded-lines {n}"),
            Expectation::NoSpuriousRetriesAfterProbation => {
                write!(f, "no-spurious-retries-after-probation")
            }
        }
    }
}

/// The chaos campaign's survival properties, in its historical report
/// order. Evaluating these against a [`RunOutcome`] reproduces the exact
/// failure lines `flexsnoop chaos` has always rendered — reproducer
/// verdicts are stable across the port.
pub fn chaos_expectations() -> [Expectation; 4] {
    [
        Expectation::CoherenceClean,
        Expectation::AllRetired,
        Expectation::SupplyAccounting,
        Expectation::NoRogueDirty,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_outcome() -> RunOutcome {
        RunOutcome {
            stats: RunStats::new(flexsnoop_metrics::EnergyModel::paper_baseline()),
            violations: Vec::new(),
            coherence: Ok(()),
            in_flight: 0,
            degraded_lines: 0,
            dirty_lines: Vec::new(),
            written: BTreeSet::new(),
            last_disruption_end: 0,
        }
    }

    #[test]
    fn clean_outcome_passes_every_expectation() {
        let out = clean_outcome();
        for e in [
            Expectation::CoherenceClean,
            Expectation::AllRetired,
            Expectation::SupplyAccounting,
            Expectation::NoRogueDirty,
            Expectation::RecoversWithin(0),
            Expectation::MaxDegradedLines(0),
            Expectation::NoSpuriousRetriesAfterProbation,
        ] {
            assert_eq!(e.check(&out), Vec::<String>::new(), "{e}");
        }
    }

    #[test]
    fn chaos_expectations_render_the_historical_messages() {
        let mut out = clean_outcome();
        out.coherence = Err("line 0x10 broken".into());
        out.in_flight = 2;
        out.stats.robustness.unfinished_cores = 1;
        out.stats.read_txns = 5;
        out.dirty_lines = vec![LineAddr(0x40)];
        let reasons: Vec<String> = chaos_expectations()
            .iter()
            .flat_map(|e| e.check(&out))
            .collect();
        assert_eq!(
            reasons,
            vec![
                "final coherence sweep failed: line 0x10 broken".to_string(),
                "2 transaction(s) never retired (lost on the ring)".to_string(),
                "1 core(s) stranded mid-stream".to_string(),
                "read supply accounting broken: 5 txns > 0 cache + 0 memory".to_string(),
                "dirty lines never written by the trace: [LineAddr(64)]".to_string(),
            ]
        );
    }

    #[test]
    fn recovery_expectations_fire_on_the_cycle_stamps() {
        let mut out = clean_outcome();
        out.last_disruption_end = 20_000;
        out.stats.robustness.last_timeout_cycle = 21_000;
        assert!(Expectation::RecoversWithin(2_000).check(&out).is_empty());
        let late = Expectation::RecoversWithin(500).check(&out);
        assert_eq!(late.len(), 1);
        assert!(late[0].contains("deadline was 20500"), "{late:?}");

        out.degraded_lines = 3;
        assert!(Expectation::MaxDegradedLines(3).check(&out).is_empty());
        assert_eq!(Expectation::MaxDegradedLines(2).check(&out).len(), 1);

        out.stats.robustness.last_probation_exit_cycle = 30_000;
        out.stats.robustness.last_spurious_retry_cycle = 29_000;
        assert!(Expectation::NoSpuriousRetriesAfterProbation
            .check(&out)
            .is_empty());
        out.stats.robustness.last_spurious_retry_cycle = 31_000;
        assert_eq!(
            Expectation::NoSpuriousRetriesAfterProbation
                .check(&out)
                .len(),
            1
        );
    }

    #[test]
    fn parse_and_render_round_trip() {
        for e in [
            Expectation::CoherenceClean,
            Expectation::AllRetired,
            Expectation::SupplyAccounting,
            Expectation::NoRogueDirty,
            Expectation::RecoversWithin(30_000),
            Expectation::MaxDegradedLines(4),
            Expectation::NoSpuriousRetriesAfterProbation,
        ] {
            assert_eq!(Expectation::parse(&e.to_string()).unwrap(), e);
        }
        assert!(Expectation::parse("retires-eventually").is_err());
        assert!(Expectation::parse("recovers-within").is_err());
        assert!(Expectation::parse("recovers-within soon").is_err());
        assert!(Expectation::parse("all-retired 3").is_err());
    }
}
