//! # flexsnoop-scenario — declarative robustness scenarios
//!
//! A scenario states a whole robustness experiment up front: the
//! topology, a sequence of composable workload phases, a disruption
//! schedule (ring partitions, node churn, randomized chaos), and —
//! first-class — the *expectations* the finished run must satisfy:
//!
//! ```
//! use flexsnoop_scenario::{run_scenario, RunOptions, Scenario};
//!
//! # fn main() -> Result<(), String> {
//! let scenario = Scenario::builder("demo")
//!     .topology_with(|t| { t.nodes(8).seed(42); })
//!     .workloads_with(|w| { w.migratory_burst(200).hot_lines(100); })
//!     .partition(&[0, 0, 0, 0, 1, 1, 1, 1], 2_000, 5_000)
//!     .expect_all_retired()
//!     .expect_coherence_clean()
//!     .expect_recovers_within(40_000)
//!     .build()?;
//! let report = run_scenario(&scenario, &RunOptions { smoke: true, ..Default::default() })?;
//! assert!(report.is_clean(), "{}", report.render());
//! # Ok(())
//! # }
//! ```
//!
//! Scenarios also parse from a line-oriented text format
//! ([`Scenario::parse`], `flexsnoop scenario run <file>`) and ship as
//! builtins ([`builtin`]). The expectation set is shared with the chaos
//! campaign: [`chaos_expectations`] reproduces the campaign's historical
//! failure predicate verbatim, so chaos reproducers and scenario reports
//! speak the same language.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`spec`] | [`Scenario`], [`PhaseSpec`], the builder, builtins. |
//! | [`expect`] | [`Expectation`], [`RunOutcome`], the checks. |
//! | [`text`] | The line-oriented scenario text format. |
//! | [`run`] | [`run_scenario`] and the [`ScenarioReport`]. |

#![warn(missing_docs)]

pub mod expect;
pub mod run;
pub mod spec;
pub mod text;

pub use expect::{chaos_expectations, Expectation, RunOutcome};
pub use run::{default_algorithms, run_scenario, AlgorithmVerdict, RunOptions, ScenarioReport};
pub use spec::{
    builtin, builtin_names, ChaosSpec, PhaseSpec, Scenario, ScenarioBuilder, TopologyBuilder,
    WorkloadBuilder,
};
