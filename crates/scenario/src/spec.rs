//! The scenario model and its builder DSL.
//!
//! A [`Scenario`] is a complete robustness experiment stated up front:
//! a topology, a sequence of workload phases, a disruption schedule
//! (partitions, node churn, randomized chaos), and the expectations the
//! finished run must satisfy. Scenarios are plain data — they can be
//! built in code ([`Scenario::builder`]), parsed from the line-oriented
//! text format ([`Scenario::parse`](crate::Scenario::parse)), or taken
//! from the [`builtin`] library — and are executed by
//! [`run_scenario`](crate::run_scenario).

use flexsnoop::ChurnWindow;
use flexsnoop_engine::Cycle;
use flexsnoop_mem::CmpId;
use flexsnoop_net::PartitionWindow;
use flexsnoop_workload::{PoolKind, Trace};

use crate::Expectation;

/// Randomized ring chaos as a scenario ingredient: the same seeded
/// [`FaultPlan::random`](flexsnoop::FaultPlan::random) schedule the
/// chaos campaign draws, truncated to `budget` faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Schedule seed (the `flexsnoop chaos --schedule` value).
    pub seed: u64,
    /// Maximum randomized faults injected (the `--budget` value).
    pub budget: u64,
}

/// One workload phase. Phases run back to back per core: each emits its
/// access budget, then the next takes over
/// ([`PhasedStream`](flexsnoop_workload::PhasedStream)).
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseSpec {
    /// A synthetic single-pool phase.
    Pool {
        /// The sharing pattern.
        kind: PoolKind,
        /// Accesses each core issues in this phase.
        accesses: u64,
        /// Pool size in cache lines.
        lines: u64,
        /// Fraction of accesses concentrated on a hot eighth of the pool.
        hot: f64,
        /// Store fraction (`Private` pools only; other kinds fix their
        /// own read/write mix).
        writes: f64,
        /// Uniform think-time range between accesses, in cycles.
        think: (u64, u64),
    },
    /// A named workload profile's pool mix (e.g. `specjbb`), re-cored to
    /// the scenario's topology.
    Profile {
        /// The profile name (see `flexsnoop list`).
        name: String,
        /// Accesses each core issues in this phase.
        accesses: u64,
    },
    /// A recorded trace replayed verbatim (cores past the trace's core
    /// count idle through this phase).
    Trace {
        /// Where the trace came from (kept for rendering; `<inline>` for
        /// traces attached in code).
        path: String,
        /// The loaded trace.
        trace: Trace,
    },
}

impl PhaseSpec {
    /// Accesses this phase contributes per core (the phase budget; trace
    /// phases contribute their longest core stream).
    pub fn accesses(&self, trace_core: usize) -> u64 {
        match self {
            PhaseSpec::Pool { accesses, .. } | PhaseSpec::Profile { accesses, .. } => *accesses,
            PhaseSpec::Trace { trace, .. } => {
                if trace_core < trace.cores() {
                    trace.core(trace_core).len() as u64
                } else {
                    0
                }
            }
        }
    }
}

/// A declarative robustness experiment: topology, workload phases,
/// disruption schedule, and expectations.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (report heading, builtin key).
    pub name: String,
    /// Ring nodes (one core per CMP).
    pub nodes: usize,
    /// Hierarchical topology as `(local, groups)` — local rings of
    /// `local` nodes bridged by a global ring — or `None` for the
    /// paper's flat ring. When set, `nodes == local × groups`.
    pub hier: Option<(usize, usize)>,
    /// Workload seed; every algorithm replays the identical trace
    /// recorded from it.
    pub seed: u64,
    /// The workload phases, in order.
    pub phases: Vec<PhaseSpec>,
    /// Randomized ring chaos, if any.
    pub chaos: Option<ChaosSpec>,
    /// Deterministic ring-partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Node churn windows (hot-remove, later re-add).
    pub churn: Vec<ChurnWindow>,
    /// The post-run health checks every algorithm's run must satisfy.
    pub expectations: Vec<Expectation>,
}

impl Scenario {
    /// Starts the builder DSL (topology → workloads → disruptions →
    /// expectations).
    pub fn builder(name: &str) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.to_string(),
                nodes: 8,
                hier: None,
                seed: 42,
                phases: Vec::new(),
                chaos: None,
                partitions: Vec::new(),
                churn: Vec::new(),
                expectations: Vec::new(),
            },
        }
    }

    /// Cycle at which the last scheduled disruption ends (latest
    /// partition heal or churn re-add); 0 when nothing is scheduled.
    pub fn last_disruption_end(&self) -> u64 {
        let heal = self.partitions.iter().map(|p| p.until.as_u64()).max();
        let readd = self.churn.iter().map(|w| w.readd_at.as_u64()).max();
        heal.into_iter().chain(readd).max().unwrap_or(0)
    }

    /// Validates cross-field constraints (the builder and the parser
    /// both finish through here).
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for the first broken constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("a scenario needs a name".into());
        }
        if self.nodes == 0 {
            return Err("a scenario needs at least one node".into());
        }
        if self.phases.is_empty() {
            return Err("a scenario needs at least one workload phase".into());
        }
        if let Some((local, groups)) = self.hier {
            if local < 2 || groups < 2 {
                return Err(format!(
                    "hierarchical topology {local}x{groups} is degenerate \
                     (both factors must be at least 2)"
                ));
            }
            if local * groups != self.nodes {
                return Err(format!(
                    "hierarchical topology {local}x{groups} covers {} nodes \
                     but the scenario has {}",
                    local * groups,
                    self.nodes
                ));
            }
        }
        if self.expectations.is_empty() {
            return Err(
                "a scenario needs at least one expectation (it would otherwise check nothing)"
                    .into(),
            );
        }
        for p in &self.partitions {
            if p.islands.len() != self.nodes {
                return Err(format!(
                    "partition window names {} nodes but the scenario has {}",
                    p.islands.len(),
                    self.nodes
                ));
            }
            if p.from >= p.until {
                return Err(format!(
                    "partition window must heal after it forms ({} >= {})",
                    p.from.as_u64(),
                    p.until.as_u64()
                ));
            }
            if p.islands.iter().all(|&i| i == p.islands[0]) {
                return Err("partition window puts every node on one island (no-op)".into());
            }
        }
        for w in &self.churn {
            if w.node.0 >= self.nodes {
                return Err(format!(
                    "churn window names node {} but the scenario has {} nodes",
                    w.node.0, self.nodes
                ));
            }
            if w.remove_at >= w.readd_at {
                return Err(format!(
                    "churn window on node {} must re-add after it removes ({} >= {})",
                    w.node.0,
                    w.remove_at.as_u64(),
                    w.readd_at.as_u64()
                ));
            }
        }
        if let Some(chaos) = &self.chaos {
            if chaos.budget == 0 {
                return Err(
                    "chaos budget must be at least 1 (a zero-fault plan is lossless)".into(),
                );
            }
        }
        Ok(())
    }
}

/// Fluent construction of a [`Scenario`], in the canonical order:
/// topology, then workload phases, then disruptions, then expectations.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

/// The topology step of the builder (`nodes`, `seed`).
#[derive(Debug)]
pub struct TopologyBuilder<'a> {
    s: &'a mut Scenario,
}

impl TopologyBuilder<'_> {
    /// Ring nodes (one core per CMP). Default: 8 (the paper machine).
    pub fn nodes(&mut self, nodes: usize) -> &mut Self {
        self.s.nodes = nodes;
        self
    }

    /// Hierarchical topology: `groups` local rings of `local` nodes
    /// each, bridged by a global ring. Also fixes the node count to
    /// `local × groups`.
    pub fn hier(&mut self, local: usize, groups: usize) -> &mut Self {
        self.s.hier = Some((local, groups));
        self.s.nodes = local * groups;
        self
    }

    /// Workload seed. Default: 42.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.s.seed = seed;
        self
    }
}

/// The workload step of the builder: appends phases in order.
#[derive(Debug)]
pub struct WorkloadBuilder<'a> {
    s: &'a mut Scenario,
}

impl WorkloadBuilder<'_> {
    /// Appends an explicit phase.
    pub fn phase(&mut self, phase: PhaseSpec) -> &mut Self {
        self.s.phases.push(phase);
        self
    }

    /// A single-pool synthetic phase with the scenario defaults
    /// (64 lines, uniform locality, 30% stores, think 20..60).
    pub fn pool(&mut self, kind: PoolKind, accesses: u64) -> &mut Self {
        self.phase(PhaseSpec::Pool {
            kind,
            accesses,
            lines: 64,
            hot: 0.0,
            writes: 0.3,
            think: (20, 60),
        })
    }

    /// A migratory burst: read-modify-write lines bouncing between
    /// cores — the traffic that keeps suppliers moving around the ring.
    pub fn migratory_burst(&mut self, accesses: u64) -> &mut Self {
        self.pool(PoolKind::Migratory, accesses)
    }

    /// Contended hot lines: a tiny producer–consumer pool with most
    /// accesses concentrated on its hot eighth.
    pub fn hot_lines(&mut self, accesses: u64) -> &mut Self {
        self.phase(PhaseSpec::Pool {
            kind: PoolKind::ProducerConsumer,
            accesses,
            lines: 16,
            hot: 0.8,
            writes: 0.3,
            think: (20, 60),
        })
    }

    /// A named workload profile's pool mix, re-cored to the scenario.
    pub fn profile(&mut self, name: &str, accesses: u64) -> &mut Self {
        self.phase(PhaseSpec::Profile {
            name: name.to_string(),
            accesses,
        })
    }

    /// A recorded trace replayed verbatim.
    pub fn trace(&mut self, trace: Trace) -> &mut Self {
        self.phase(PhaseSpec::Trace {
            path: "<inline>".to_string(),
            trace,
        })
    }
}

impl ScenarioBuilder {
    /// The topology step.
    pub fn topology_with(mut self, f: impl FnOnce(&mut TopologyBuilder<'_>)) -> Self {
        f(&mut TopologyBuilder {
            s: &mut self.scenario,
        });
        self
    }

    /// The workload step: phases appended in call order.
    pub fn workloads_with(mut self, f: impl FnOnce(&mut WorkloadBuilder<'_>)) -> Self {
        f(&mut WorkloadBuilder {
            s: &mut self.scenario,
        });
        self
    }

    /// Adds a partition window: `islands[node]` is each node's island id
    /// during `[from, until)`.
    pub fn partition(mut self, islands: &[usize], from: u64, until: u64) -> Self {
        self.scenario.partitions.push(PartitionWindow {
            islands: islands.to_vec(),
            from: Cycle::new(from),
            until: Cycle::new(until),
        });
        self
    }

    /// Adds a churn window: `node` detaches at `remove_at` and rejoins
    /// at `readd_at`, cold (flushed) or warm (demoted).
    pub fn churn_window(mut self, node: usize, remove_at: u64, readd_at: u64, warm: bool) -> Self {
        self.scenario.churn.push(ChurnWindow {
            node: CmpId(node),
            remove_at: Cycle::new(remove_at),
            readd_at: Cycle::new(readd_at),
            warm,
        });
        self
    }

    /// Arms randomized ring chaos (a seeded schedule with a fault
    /// budget) as part of the scenario.
    pub fn chaos(mut self, seed: u64, budget: u64) -> Self {
        self.scenario.chaos = Some(ChaosSpec { seed, budget });
        self
    }

    /// Appends an expectation.
    pub fn expect(mut self, e: Expectation) -> Self {
        self.scenario.expectations.push(e);
        self
    }

    /// Expects every transaction to retire and every core to finish.
    pub fn expect_all_retired(self) -> Self {
        self.expect(Expectation::AllRetired)
    }

    /// Expects a clean oracle and final coherence sweep.
    pub fn expect_coherence_clean(self) -> Self {
        self.expect(Expectation::CoherenceClean)
    }

    /// Expects at-least-once read supply accounting.
    pub fn expect_supply_accounting(self) -> Self {
        self.expect(Expectation::SupplyAccounting)
    }

    /// Expects only trace-written lines to end dirty.
    pub fn expect_no_rogue_dirty(self) -> Self {
        self.expect(Expectation::NoRogueDirty)
    }

    /// Expects no recovery timeout later than `slack` cycles after the
    /// last scheduled disruption ends.
    pub fn expect_recovers_within(self, slack: u64) -> Self {
        self.expect(Expectation::RecoversWithin(slack))
    }

    /// Expects at most `n` lines still degraded at the end.
    pub fn expect_max_degraded_lines(self, n: u64) -> Self {
        self.expect(Expectation::MaxDegradedLines(n))
    }

    /// Expects no spurious retry after the last probation exit.
    pub fn expect_no_spurious_retries_after_probation(self) -> Self {
        self.expect(Expectation::NoSpuriousRetriesAfterProbation)
    }

    /// Validates and returns the scenario.
    ///
    /// # Errors
    ///
    /// Returns the first broken constraint (see [`Scenario::validate`]).
    pub fn build(self) -> Result<Scenario, String> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }
}

/// Names of the builtin scenarios, in listing order.
pub fn builtin_names() -> &'static [&'static str] {
    &["partition-heal", "churn", "hierarchy-partition"]
}

/// Looks up a builtin scenario by name.
///
/// `partition-heal` splits the paper's 8-node ring into two 4-node
/// islands mid-run and demands full recovery after the heal; `churn`
/// hot-removes one node cold and another warm on a lossless ring and
/// demands the machine absorbs both without a single timeout;
/// `hierarchy-partition` severs the global ring of a 4×4 hierarchical
/// machine along group boundaries (local rings keep circulating, every
/// escalation is refused at the bridge) and demands full recovery once
/// the bridge links heal.
pub fn builtin(name: &str) -> Option<Scenario> {
    let scenario = match name {
        "partition-heal" => Scenario::builder("partition-heal")
            .topology_with(|t| {
                t.nodes(8).seed(42);
            })
            .workloads_with(|w| {
                w.migratory_burst(600).hot_lines(400);
            })
            .partition(&[0, 0, 0, 0, 1, 1, 1, 1], 8_000, 20_000)
            .expect_all_retired()
            .expect_coherence_clean()
            .expect_supply_accounting()
            .expect_no_rogue_dirty()
            .expect_recovers_within(40_000)
            .expect_max_degraded_lines(64)
            .expect_no_spurious_retries_after_probation()
            .build(),
        "churn" => Scenario::builder("churn")
            .topology_with(|t| {
                t.nodes(8).seed(42);
            })
            .workloads_with(|w| {
                w.migratory_burst(500).hot_lines(500);
            })
            .churn_window(2, 6_000, 14_000, false)
            .churn_window(5, 9_000, 18_000, true)
            .expect_all_retired()
            .expect_coherence_clean()
            .expect_supply_accounting()
            .expect_no_rogue_dirty()
            .expect_recovers_within(0)
            .expect_max_degraded_lines(0)
            .build(),
        "hierarchy-partition" => Scenario::builder("hierarchy-partition")
            .topology_with(|t| {
                t.hier(4, 4).seed(42);
            })
            // Longer think times than the flat builtins: at 16 nodes the
            // default (20, 60) saturates the ring and pure-congestion
            // timeouts would keep firing long after the heal, drowning
            // the recovery deadline this scenario is about.
            .workloads_with(|w| {
                w.phase(PhaseSpec::Pool {
                    kind: PoolKind::Migratory,
                    accesses: 400,
                    lines: 64,
                    hot: 0.0,
                    writes: 0.3,
                    think: (80, 240),
                })
                .phase(PhaseSpec::Pool {
                    kind: PoolKind::ProducerConsumer,
                    accesses: 300,
                    lines: 16,
                    hot: 0.8,
                    writes: 0.3,
                    think: (80, 240),
                });
            })
            // Groups {0,1} against {2,3}: every local-ring hop stays
            // inside its island, so only the two bridge links that
            // cross the cut (4→8 and 12→0) are refused.
            .partition(
                &[0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1],
                8_000,
                20_000,
            )
            .expect_all_retired()
            .expect_coherence_clean()
            .expect_supply_accounting()
            .expect_no_rogue_dirty()
            .expect_recovers_within(40_000)
            .expect_max_degraded_lines(64)
            .expect_no_spurious_retries_after_probation()
            .build(),
        _ => return None,
    };
    Some(scenario.expect("builtin scenarios always validate"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_follows_the_canonical_order() {
        let s = Scenario::builder("demo")
            .topology_with(|t| {
                t.nodes(4).seed(7);
            })
            .workloads_with(|w| {
                w.migratory_burst(100).profile("specweb", 50);
            })
            .partition(&[0, 1, 0, 1], 1_000, 2_000)
            .churn_window(3, 500, 900, true)
            .chaos(9, 12)
            .expect_all_retired()
            .expect_recovers_within(5_000)
            .build()
            .unwrap();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.seed, 7);
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.partitions.len(), 1);
        assert_eq!(s.churn.len(), 1);
        assert_eq!(
            s.chaos,
            Some(ChaosSpec {
                seed: 9,
                budget: 12
            })
        );
        assert_eq!(s.expectations.len(), 2);
        assert_eq!(s.last_disruption_end(), 2_000);
    }

    #[test]
    fn validation_rejects_broken_scenarios() {
        let base = || {
            Scenario::builder("demo")
                .workloads_with(|w| {
                    w.migratory_burst(10);
                })
                .expect_all_retired()
        };
        assert!(base().build().is_ok());
        // No phases.
        let err = Scenario::builder("x").expect_all_retired().build();
        assert!(err.unwrap_err().contains("workload phase"));
        // No expectations.
        let err = Scenario::builder("x")
            .workloads_with(|w| {
                w.pool(PoolKind::Private, 10);
            })
            .build();
        assert!(err.unwrap_err().contains("expectation"));
        // Partition island count mismatch.
        let err = base().partition(&[0, 1], 10, 20).build();
        assert!(err.unwrap_err().contains("names 2 nodes"));
        // Partition that never heals.
        let err = base().partition(&[0, 0, 0, 0, 1, 1, 1, 1], 20, 20).build();
        assert!(err.unwrap_err().contains("heal after"));
        // Single-island partition is a no-op.
        let err = base().partition(&[0; 8], 10, 20).build();
        assert!(err.unwrap_err().contains("one island"));
        // Churn node out of range.
        let err = base().churn_window(8, 10, 20, false).build();
        assert!(err.unwrap_err().contains("names node 8"));
        // Churn that never re-adds.
        let err = base().churn_window(1, 20, 20, false).build();
        assert!(err.unwrap_err().contains("re-add after"));
        // Zero-budget chaos.
        let err = base().chaos(1, 0).build();
        assert!(err.unwrap_err().contains("budget"));
    }

    #[test]
    fn builtins_resolve_and_validate() {
        for name in builtin_names() {
            let s = builtin(name).unwrap();
            assert_eq!(&s.name, name);
            assert!(s.validate().is_ok());
        }
        assert!(builtin("no-such-scenario").is_none());
        let heal = builtin("partition-heal").unwrap();
        assert_eq!(heal.partitions.len(), 1);
        assert_eq!(heal.last_disruption_end(), 20_000);
        let churn = builtin("churn").unwrap();
        assert_eq!(churn.churn.len(), 2);
        assert!(churn.partitions.is_empty());
        let hp = builtin("hierarchy-partition").unwrap();
        assert_eq!(hp.hier, Some((4, 4)));
        assert_eq!(hp.nodes, 16);
        assert_eq!(hp.partitions.len(), 1);
        // The cut follows group boundaries: nodes of one local ring
        // never straddle islands.
        let islands = &hp.partitions[0].islands;
        for group in 0..4 {
            let first = islands[group * 4];
            assert!(
                (0..4).all(|n| islands[group * 4 + n] == first),
                "group {group} straddles the partition cut"
            );
        }
    }

    #[test]
    fn validation_rejects_broken_hierarchies() {
        let base = |f: fn(&mut TopologyBuilder<'_>)| {
            Scenario::builder("h")
                .topology_with(f)
                .workloads_with(|w| {
                    w.migratory_burst(10);
                })
                .expect_all_retired()
                .build()
        };
        assert_eq!(
            base(|t| {
                t.hier(4, 4);
            })
            .unwrap()
            .nodes,
            16
        );
        // A later explicit node count that disagrees with the shape.
        let err = base(|t| {
            t.hier(4, 4).nodes(8);
        });
        assert!(err.unwrap_err().contains("covers 16 nodes"));
        // Degenerate single-node local rings / single-ring hierarchies.
        let err = base(|t| {
            t.hier(1, 8);
        });
        assert!(err.unwrap_err().contains("degenerate"));
        let err = base(|t| {
            t.hier(8, 1);
        });
        assert!(err.unwrap_err().contains("degenerate"));
    }
}
