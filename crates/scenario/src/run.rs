//! Executes a scenario across the Table 3 algorithm matrix.
//!
//! One call to [`run_scenario`] builds the scenario's per-core
//! [`PhasedStream`]s, records the composite trace once, and replays that
//! identical trace through every requested algorithm with the scenario's
//! full disruption schedule armed (partitions, churn, chaos). Each
//! algorithm's run is evaluated against the scenario's expectations; in
//! full mode each run is additionally repeated on the second event-queue
//! backend and compared bit-for-bit (the repo's core determinism
//! invariant must survive every disruption a scenario can schedule).

use std::collections::BTreeSet;

use flexsnoop::{
    default_hier, energy_model_for, Algorithm, FaultPlan, MachineConfig, RunStats, Simulator,
    VecStream,
};
use flexsnoop_engine::{Executor, QueueKind};
use flexsnoop_mem::{CoherState, LineAddr};
use flexsnoop_workload::{
    profiles, AccessStream, PhasedStream, PoolSpec, StreamPhase, SyntheticStream, Trace,
    WorkloadProfile,
};

use crate::{PhaseSpec, RunOutcome, Scenario};

/// The four predictor-driven Table 3 algorithms, in table order — the
/// default matrix a scenario runs against.
pub fn default_algorithms() -> [Algorithm; 4] {
    [
        Algorithm::Subset,
        Algorithm::SupersetCon,
        Algorithm::SupersetAgg,
        Algorithm::Exact,
    ]
}

/// Knobs for one scenario execution.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Algorithms to run (each replays the identical trace).
    pub algorithms: Vec<Algorithm>,
    /// Smoke mode: only the first two algorithms, and skip the
    /// second-backend determinism re-run (the CI quick job).
    pub smoke: bool,
    /// Worker threads for the algorithm sweep.
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            algorithms: default_algorithms().to_vec(),
            smoke: false,
            threads: 4,
        }
    }
}

/// One algorithm's verdict under the scenario.
#[derive(Debug, Clone)]
pub struct AlgorithmVerdict {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// One line per broken expectation (plus a determinism line if the
    /// backends diverged); empty when the run passed.
    pub failures: Vec<String>,
    /// The run's statistics (Heap backend).
    pub stats: RunStats,
    /// Whether the second-backend bit-identity re-run executed.
    pub determinism_checked: bool,
}

/// The result of one [`run_scenario`] call (the CI expectation-report
/// artifact body comes from [`ScenarioReport::render`]).
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Ring nodes simulated.
    pub nodes: usize,
    /// Hierarchical shape `(local, groups)`, or `None` for a flat ring.
    pub hier: Option<(usize, usize)>,
    /// Workload seed the trace was recorded from.
    pub seed: u64,
    /// Longest per-core access stream the phases produced.
    pub accesses_per_core: u64,
    /// Whether smoke mode trimmed the matrix.
    pub smoke: bool,
    /// Per-algorithm verdicts, in run order.
    pub verdicts: Vec<AlgorithmVerdict>,
}

impl ScenarioReport {
    /// True when every algorithm satisfied every expectation.
    pub fn is_clean(&self) -> bool {
        self.verdicts.iter().all(|v| v.failures.is_empty())
    }

    /// Total broken-expectation lines across the matrix.
    pub fn failure_count(&self) -> usize {
        self.verdicts.iter().map(|v| v.failures.len()).sum()
    }

    /// Renders the markdown expectation report.
    pub fn render(&self) -> String {
        let topology = match self.hier {
            Some((local, groups)) => format!("hier:{local}x{groups}"),
            None => "flat".to_string(),
        };
        let mut out = format!(
            "# Scenario: {}\n\n\
             - nodes: {} ({topology}), seed: {}, accesses/core: {}, mode: {}\n\
             - verdict: **{}**\n\n\
             | algorithm | partition blocked | churn (out/in) | timeouts | retries | \
             degraded | expectations | determinism |\n\
             |---|---|---|---|---|---|---|---|\n",
            self.name,
            self.nodes,
            self.seed,
            self.accesses_per_core,
            if self.smoke { "smoke" } else { "full" },
            if self.is_clean() {
                "CLEAN".to_string()
            } else {
                format!("{} FAILURE(S)", self.failure_count())
            }
        );
        for v in &self.verdicts {
            let r = &v.stats.robustness;
            out.push_str(&format!(
                "| {} | {} | {}/{} | {} | {} | {} | {} | {} |\n",
                v.algorithm,
                r.partition_blocked,
                r.churn_detaches,
                r.churn_readds,
                r.timeouts,
                r.retries,
                r.degraded_entries,
                if v.failures.is_empty() {
                    "ok".to_string()
                } else {
                    format!("{} broken", v.failures.len())
                },
                if v.determinism_checked {
                    "bit-identical"
                } else {
                    "skipped (smoke)"
                },
            ));
        }
        for v in &self.verdicts {
            if v.failures.is_empty() {
                continue;
            }
            out.push_str(&format!("\n## {}\n\n", v.algorithm));
            for f in &v.failures {
                out.push_str(&format!("- {f}\n"));
            }
        }
        out
    }
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// Per-(phase, core) stream seed, derived so phases and cores are
/// mutually independent for one scenario seed.
fn phase_core_seed(seed: u64, phase: usize, core: usize) -> u64 {
    let phase_seed = seed.wrapping_mul(GOLDEN).wrapping_add(phase as u64 + 1);
    phase_seed
        .wrapping_mul(GOLDEN)
        .wrapping_add(core as u64 + 1)
}

fn profile_by_name(name: &str) -> Result<WorkloadProfile, String> {
    profiles::all()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| format!("unknown workload profile `{name}` in a scenario phase"))
}

/// Builds one core's phase chain.
fn core_stream(s: &Scenario, core: usize) -> Result<PhasedStream, String> {
    let cores = s.nodes;
    let mut chain = Vec::with_capacity(s.phases.len());
    for (idx, phase) in s.phases.iter().enumerate() {
        let seed = phase_core_seed(s.seed, idx, core);
        chain.push(match phase {
            PhaseSpec::Pool {
                kind,
                accesses,
                lines,
                hot,
                writes,
                think,
            } => {
                let pool = PoolSpec {
                    kind: *kind,
                    lines: *lines,
                    weight: 1.0,
                    hot_fraction: *hot,
                };
                StreamPhase::new(
                    Box::new(SyntheticStream::new(
                        core,
                        cores,
                        vec![pool],
                        *writes,
                        *think,
                        seed,
                    )),
                    *accesses,
                )
            }
            PhaseSpec::Profile { name, accesses } => {
                let p = profile_by_name(name)?;
                StreamPhase::new(
                    Box::new(SyntheticStream::new(
                        core,
                        cores,
                        p.pools.clone(),
                        p.write_fraction,
                        p.think,
                        seed,
                    )),
                    *accesses,
                )
            }
            PhaseSpec::Trace { trace, .. } => {
                let accesses = if core < trace.cores() {
                    trace.core(core).to_vec()
                } else {
                    Vec::new()
                };
                StreamPhase::unbounded(Box::new(VecStream::new(accesses)))
            }
        });
    }
    Ok(PhasedStream::new(chain))
}

/// One run's collected observables (for expectations and the
/// bit-identity diff).
struct Collected {
    stats: RunStats,
    snapshot: Vec<(LineAddr, usize, usize, CoherState)>,
    outcome: RunOutcome,
}

#[allow(clippy::too_many_arguments)]
fn run_backend(
    s: &Scenario,
    machine: &MachineConfig,
    trace: &Trace,
    plan: &FaultPlan,
    written: &BTreeSet<LineAddr>,
    limit: u64,
    alg: Algorithm,
    kind: QueueKind,
) -> Result<Collected, String> {
    let predictor = alg.default_predictor();
    let energy = energy_model_for(&predictor);
    let streams: Vec<Box<dyn AccessStream + Send>> = VecStream::from_trace(trace)
        .into_iter()
        .map(|v| Box::new(v) as Box<dyn AccessStream + Send>)
        .collect();
    let mut sim = Simulator::new(*machine, alg, predictor, energy, streams, limit)?;
    sim.use_event_queue(kind);
    sim.enable_invariant_checks();
    sim.set_fault_plan(plan.clone());
    sim.set_churn_plan(s.churn.clone())?;
    let stats = sim.run();
    let snapshot = sim.state_snapshot();
    let dirty_lines = snapshot
        .iter()
        .filter(|(_, _, _, st)| st.is_dirty())
        .map(|&(line, _, _, _)| line)
        .collect();
    let outcome = RunOutcome {
        stats: stats.clone(),
        violations: sim.violations().to_vec(),
        coherence: sim.validate_coherence(),
        in_flight: sim.in_flight(),
        degraded_lines: sim.degraded_line_count() as u64,
        dirty_lines,
        written: written.clone(),
        last_disruption_end: s.last_disruption_end(),
    };
    Ok(Collected {
        stats,
        snapshot,
        outcome,
    })
}

/// Runs a scenario: records its composite trace once, replays it under
/// every requested algorithm with the disruption schedule armed, and
/// evaluates the expectations.
///
/// ```
/// use flexsnoop_scenario::{builtin, run_scenario, RunOptions};
///
/// # fn main() -> Result<(), String> {
/// let scenario = builtin("churn").expect("builtin");
/// let opts = RunOptions { smoke: true, ..RunOptions::default() };
/// let report = run_scenario(&scenario, &opts)?;
/// assert!(report.is_clean(), "{}", report.render());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns a message for an invalid scenario or a configuration a
/// simulator rejects (broken expectations land in the report, not the
/// error).
pub fn run_scenario(s: &Scenario, opts: &RunOptions) -> Result<ScenarioReport, String> {
    s.validate()?;
    let mut streams = (0..s.nodes)
        .map(|core| core_stream(s, core))
        .collect::<Result<Vec<_>, _>>()?;
    let trace = Trace::record(&mut streams, u64::MAX);
    let limit = (0..trace.cores())
        .map(|c| trace.core(c).len() as u64)
        .max()
        .unwrap_or(0);
    let written: BTreeSet<LineAddr> = (0..trace.cores())
        .flat_map(|c| trace.core(c).iter())
        .filter(|a| a.write)
        .map(|a| a.line)
        .collect();
    let mut machine = MachineConfig {
        nodes: s.nodes,
        ..MachineConfig::isca2006(1)
    };
    if let Some((local, groups)) = s.hier {
        machine.ring.hier = Some(default_hier(local, groups));
    }
    let mut plan = match &s.chaos {
        Some(c) => FaultPlan::random(c.seed, s.nodes, machine.ring.rings).with_budget(c.budget),
        None => FaultPlan::lossless(),
    };
    plan.partitions = s.partitions.clone();

    let algorithms: Vec<Algorithm> = if opts.smoke {
        opts.algorithms.iter().copied().take(2).collect()
    } else {
        opts.algorithms.clone()
    };
    let tasks: Vec<_> = algorithms
        .iter()
        .map(|&alg| {
            let (s, machine, trace, plan, written) = (s, &machine, &trace, &plan, &written);
            let smoke = opts.smoke;
            move || -> Result<AlgorithmVerdict, String> {
                let heap = run_backend(
                    s,
                    machine,
                    trace,
                    plan,
                    written,
                    limit,
                    alg,
                    QueueKind::Heap,
                )?;
                let mut failures: Vec<String> = s
                    .expectations
                    .iter()
                    .flat_map(|e| e.check(&heap.outcome))
                    .collect();
                let mut determinism_checked = false;
                if !smoke {
                    let bucketed = run_backend(
                        s,
                        machine,
                        trace,
                        plan,
                        written,
                        limit,
                        alg,
                        QueueKind::Bucketed,
                    )?;
                    determinism_checked = true;
                    if bucketed.stats != heap.stats || bucketed.snapshot != heap.snapshot {
                        failures.push(
                            "run diverges across queue backends (must be bit-for-bit)".into(),
                        );
                    }
                }
                Ok(AlgorithmVerdict {
                    algorithm: alg,
                    failures,
                    stats: heap.stats,
                    determinism_checked,
                })
            }
        })
        .collect();
    let verdicts = Executor::new(opts.threads.max(1))
        .run(tasks)
        .into_iter()
        .collect::<Result<Vec<_>, String>>()?;

    Ok(ScenarioReport {
        name: s.name.clone(),
        nodes: s.nodes,
        hier: s.hier,
        seed: s.seed,
        accesses_per_core: limit,
        smoke: opts.smoke,
        verdicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builtin, Expectation, Scenario};

    fn smoke() -> RunOptions {
        RunOptions {
            smoke: true,
            threads: 2,
            ..RunOptions::default()
        }
    }

    #[test]
    fn partition_heal_builtin_recovers_in_smoke_mode() {
        let s = builtin("partition-heal").unwrap();
        let report = run_scenario(&s, &smoke()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.verdicts.len(), 2);
        for v in &report.verdicts {
            assert!(
                v.stats.robustness.partition_blocked > 0,
                "{}: the partition window must actually refuse hops",
                v.algorithm
            );
            assert!(
                v.stats.robustness.timeouts > 0,
                "{}: blocked hops must surface as recovery timeouts",
                v.algorithm
            );
            assert!(!v.determinism_checked, "smoke skips the second backend");
        }
        assert!(report.render().contains("CLEAN"));
    }

    #[test]
    fn hierarchy_partition_builtin_recovers_in_smoke_mode() {
        let s = builtin("hierarchy-partition").unwrap();
        let report = run_scenario(&s, &smoke()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.nodes, 16);
        for v in &report.verdicts {
            assert!(
                v.stats.robustness.partition_blocked > 0,
                "{}: the severed bridge links must actually refuse hops",
                v.algorithm
            );
            assert!(
                v.stats.global_circulations > 0,
                "{}: cross-group traffic must escalate onto the global ring",
                v.algorithm
            );
            assert_eq!(
                v.stats.local_circulations + v.stats.global_circulations,
                v.stats.read_txns,
                "{}: two-level circulation accounting leaks",
                v.algorithm
            );
        }
        assert!(report.render().contains("hier:4x4"));
    }

    #[test]
    fn churn_builtin_absorbs_both_windows_in_smoke_mode() {
        let s = builtin("churn").unwrap();
        let report = run_scenario(&s, &smoke()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        for v in &report.verdicts {
            assert_eq!(v.stats.robustness.churn_detaches, 2, "{}", v.algorithm);
            assert_eq!(v.stats.robustness.churn_readds, 2, "{}", v.algorithm);
            assert_eq!(
                v.stats.robustness.timeouts, 0,
                "{}: churn on a lossless ring must not need timeouts",
                v.algorithm
            );
        }
    }

    #[test]
    fn full_matrix_is_bit_identical_across_backends() {
        let s = builtin("partition-heal").unwrap();
        let report = run_scenario(&s, &RunOptions::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.verdicts.len(), 4);
        for v in &report.verdicts {
            assert!(v.determinism_checked, "{}", v.algorithm);
        }
        assert!(report.render().contains("bit-identical"));
    }

    #[test]
    fn chaos_spec_arms_randomized_faults_inside_a_scenario() {
        let s = Scenario::builder("chaos-demo")
            .topology_with(|t| {
                t.nodes(4).seed(11);
            })
            .workloads_with(|w| {
                w.migratory_burst(300);
            })
            .chaos(5, 16)
            .expect_all_retired()
            .expect_coherence_clean()
            .expect_supply_accounting()
            .expect_no_rogue_dirty()
            .build()
            .unwrap();
        let report = run_scenario(&s, &smoke()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn broken_expectation_fails_the_report() {
        // Requests blocked near the end of the partition window time out
        // only after the heal, so a zero-slack recovery deadline (settle
        // at the very heal cycle) is impossible to meet.
        let mut s = builtin("partition-heal").unwrap();
        s.expectations = vec![Expectation::RecoversWithin(0)];
        let report = run_scenario(&s, &smoke()).unwrap();
        assert!(!report.is_clean());
        assert!(report.render().contains("FAILURE"), "{}", report.render());
    }

    #[test]
    fn reports_are_deterministic() {
        let s = builtin("churn").unwrap();
        let a = run_scenario(&s, &smoke()).unwrap();
        let b = run_scenario(&s, &smoke()).unwrap();
        assert_eq!(a.render(), b.render());
        for (va, vb) in a.verdicts.iter().zip(&b.verdicts) {
            assert_eq!(va.stats, vb.stats);
        }
    }
}
