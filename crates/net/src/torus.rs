//! The 2-D torus data network.
//!
//! Data messages (cache lines, memory requests/responses) do not use the
//! snoop ring; they take the shortest path on the physical 2-D torus with
//! dimension-order (X then Y) routing. Each directed link is a FIFO
//! resource, so heavy data traffic between neighbouring nodes queues.
//!
//! A [`crate::FaultPlan`] with `torus_drop > 0` can be armed via
//! [`Torus::set_fault_plan`]; idempotent data legs sent through
//! [`Torus::send_outcome`] are then subject to seeded, budget-bounded
//! drops. The lossless default leaves every code path bit-identical to
//! the fault-free torus.

use crate::fault::{FaultPlan, TorusFaultState};
use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::{Cycle, Cycles, Resource};
use flexsnoop_mem::CmpId;

/// Static parameters of the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TorusConfig {
    /// Torus width (X dimension).
    pub width: usize,
    /// Torus height (Y dimension).
    pub height: usize,
    /// Propagation latency per link.
    pub hop_latency: Cycles,
    /// Per-hop router pipeline latency.
    pub router_latency: Cycles,
    /// Link occupancy per message (serialization of a 64 B line + header).
    pub link_service: Cycles,
}

impl TorusConfig {
    /// A torus that covers `nodes` nodes with near-square dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn near_square(
        nodes: usize,
        hop_latency: Cycles,
        router_latency: Cycles,
        link_service: Cycles,
    ) -> Self {
        assert!(nodes > 0, "torus needs at least one node");
        let mut width = (nodes as f64).sqrt().ceil() as usize;
        while !nodes.is_multiple_of(width) {
            width += 1;
        }
        TorusConfig {
            width,
            height: nodes / width,
            hop_latency,
            router_latency,
            link_service,
        }
    }

    /// Total nodes on the torus.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    fn coords(&self, node: CmpId) -> (usize, usize) {
        (node.0 % self.width, node.0 / self.width)
    }

    /// Minimal wraparound distance along one dimension of size `dim`.
    fn dim_hops(a: usize, b: usize, dim: usize) -> usize {
        let d = (b + dim - a) % dim;
        d.min(dim - d)
    }

    /// Number of links on the shortest path from `a` to `b`.
    pub fn hops(&self, a: CmpId, b: CmpId) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        Self::dim_hops(ax, bx, self.width) + Self::dim_hops(ay, by, self.height)
    }
}

/// The torus with per-directed-link occupancy.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::{Cycle, Cycles};
/// use flexsnoop_mem::CmpId;
/// use flexsnoop_net::{Torus, TorusConfig};
///
/// let mut t = Torus::new(TorusConfig::near_square(8, Cycles(10), Cycles(4), Cycles(2)));
/// let arrival = t.send(CmpId(0), CmpId(1), Cycle::new(0));
/// assert!(arrival > Cycle::new(0));
/// ```
#[derive(Debug, Clone)]
pub struct Torus {
    config: TorusConfig,
    /// One resource per (node, direction); directions: 0=+X, 1=-X, 2=+Y, 3=-Y.
    links: Vec<[Resource; 4]>,
    messages: u64,
    faults: Option<TorusFaultState>,
}

impl Torus {
    /// Creates an idle torus.
    pub fn new(config: TorusConfig) -> Self {
        Self {
            links: (0..config.nodes()).map(|_| Default::default()).collect(),
            config,
            messages: 0,
            faults: None,
        }
    }

    /// The configuration this torus was built with.
    pub fn config(&self) -> &TorusConfig {
        &self.config
    }

    /// Estimated heap footprint of the torus in bytes (the per-node link
    /// array dominates).
    pub fn footprint_bytes(&self) -> u64 {
        (size_of::<Self>() + self.links.capacity() * size_of::<[Resource; 4]>()) as u64
    }

    /// Arms (or clears, for a plan without torus faults) the fault layer.
    /// Must be called before any traffic so the drop schedule is a pure
    /// function of the plan.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        assert_eq!(self.messages, 0, "fault plan must be armed before traffic");
        self.faults = if plan.torus_faults() {
            Some(TorusFaultState::new(plan.clone()))
        } else {
            None
        };
    }

    /// Whether a fault plan with torus drops is armed.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// Torus data messages dropped by the armed fault plan so far.
    pub fn fault_drops(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.drops())
    }

    /// Sends one data message from `src` to `dst` starting at `now` using
    /// dimension-order routing; returns its arrival time. A message to self
    /// arrives after one router traversal (the on-chip turnaround).
    pub fn send(&mut self, src: CmpId, dst: CmpId, now: Cycle) -> Cycle {
        self.messages += 1;
        let mut t = now;
        let (mut x, mut y) = self.config.coords(src);
        let (dx, dy) = self.config.coords(dst);
        if src == dst {
            return t + self.config.router_latency;
        }
        // X dimension first, then Y (deadlock-free dimension-order routing).
        while x != dx {
            let (dir, nx) = Self::step(x, dx, self.config.width);
            let node = y * self.config.width + x;
            t = self.traverse(node, dir, t);
            x = nx;
        }
        while y != dy {
            let (dir, ny) = Self::step(y, dy, self.config.height);
            let node = y * self.config.width + x;
            t = self.traverse(node, dir + 2, t);
            y = ny;
        }
        t
    }

    /// Sends one *droppable* data message from `src` to `dst`: the
    /// message traverses (and occupies) its route exactly like
    /// [`Torus::send`], then the armed fault plan decides whether it is
    /// lost on the final hop. Returns `None` when dropped. With no plan
    /// armed this is exactly `Some(self.send(..))`, bit for bit.
    ///
    /// Only idempotent legs (memory requests/replies, speculative
    /// prefetches, clean cache supplies) may go through here; dirty-data
    /// donations and writebacks must use the reliable [`Torus::send`].
    pub fn send_outcome(&mut self, src: CmpId, dst: CmpId, now: Cycle) -> Option<Cycle> {
        let arrival = self.send(src, dst, now);
        if self.faults.as_mut().is_some_and(|f| f.decide()) {
            None
        } else {
            Some(arrival)
        }
    }

    /// Chooses the direction (0 = increasing, 1 = decreasing) and next
    /// coordinate for the shortest wraparound move from `a` toward `b`.
    fn step(a: usize, b: usize, dim: usize) -> (usize, usize) {
        let fwd = (b + dim - a) % dim;
        if fwd <= dim - fwd {
            (0, (a + 1) % dim)
        } else {
            (1, (a + dim - 1) % dim)
        }
    }

    fn traverse(&mut self, node: usize, dir: usize, now: Cycle) -> Cycle {
        let grant = self.links[node][dir].acquire(now, self.config.link_service);
        grant.end + self.config.hop_latency + self.config.router_latency
    }

    /// Unloaded latency between two nodes.
    pub fn unloaded_latency(&self, a: CmpId, b: CmpId) -> Cycles {
        let hops = self.config.hops(a, b) as u64;
        if hops == 0 {
            return self.config.router_latency;
        }
        (self.config.link_service + self.config.hop_latency + self.config.router_latency) * hops
    }

    /// Total data messages sent.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

/// Serializes per-link occupancy, the message counter, and the live
/// torus fault stream. The restore target must be built from the same
/// [`TorusConfig`] with the matching fault plan armed (arming happens
/// before traffic, so [`Torus::set_fault_plan`]'s no-traffic assertion is
/// naturally satisfied on a fresh torus).
impl Snapshot for Torus {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.links.len());
        for node in &self.links {
            for link in node {
                link.save_into(w);
            }
        }
        w.put_u64(self.messages);
        match &self.faults {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                f.save_into(w);
            }
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.links.len() {
            return Err(SnapError::Corrupt("torus node count does not match config"));
        }
        for node in &mut self.links {
            for link in node {
                link.restore_from(r)?;
            }
        }
        self.messages = r.get_u64()?;
        let had_faults = r.get_bool()?;
        match (&mut self.faults, had_faults) {
            (None, false) => {}
            (Some(f), true) => f.restore_from(r)?,
            (None, true) => {
                return Err(SnapError::Corrupt(
                    "snapshot has torus fault state but no plan is armed",
                ));
            }
            (Some(_), false) => {
                return Err(SnapError::Corrupt(
                    "a torus fault plan is armed but the snapshot was lossless",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus8() -> Torus {
        Torus::new(TorusConfig::near_square(
            8,
            Cycles(10),
            Cycles(4),
            Cycles(2),
        ))
    }

    #[test]
    fn near_square_factors() {
        let c = TorusConfig::near_square(8, Cycles(1), Cycles(1), Cycles(1));
        assert_eq!((c.width, c.height), (4, 2));
        assert_eq!(c.nodes(), 8);
        let c16 = TorusConfig::near_square(16, Cycles(1), Cycles(1), Cycles(1));
        assert_eq!((c16.width, c16.height), (4, 4));
    }

    #[test]
    fn hop_counts_use_wraparound() {
        let c = TorusConfig::near_square(8, Cycles(1), Cycles(1), Cycles(1));
        // 4x2 torus: node 0 at (0,0), node 3 at (3,0) is 1 hop via wrap.
        assert_eq!(c.hops(CmpId(0), CmpId(3)), 1);
        assert_eq!(c.hops(CmpId(0), CmpId(1)), 1);
        assert_eq!(c.hops(CmpId(0), CmpId(2)), 2);
        assert_eq!(c.hops(CmpId(0), CmpId(6)), 3); // (2,1): 2 in X + 1 in Y
        assert_eq!(c.hops(CmpId(5), CmpId(5)), 0);
    }

    #[test]
    fn send_to_self_is_cheap() {
        let mut t = torus8();
        assert_eq!(t.send(CmpId(2), CmpId(2), Cycle::new(5)), Cycle::new(9));
    }

    #[test]
    fn unloaded_send_matches_unloaded_latency() {
        let t = torus8();
        for a in 0..8 {
            for b in 0..8 {
                let mut fresh = torus8();
                let arrive = fresh.send(CmpId(a), CmpId(b), Cycle::new(0));
                assert_eq!(
                    arrive - Cycle::new(0),
                    t.unloaded_latency(CmpId(a), CmpId(b)),
                    "{a}->{b}"
                );
            }
        }
    }

    #[test]
    fn contention_on_shared_first_link() {
        let mut t = torus8();
        let a = t.send(CmpId(0), CmpId(1), Cycle::new(0));
        let b = t.send(CmpId(0), CmpId(1), Cycle::new(0));
        assert!(b > a, "same route must serialize");
    }

    #[test]
    fn message_counter() {
        let mut t = torus8();
        t.send(CmpId(0), CmpId(5), Cycle::new(0));
        t.send(CmpId(1), CmpId(2), Cycle::new(0));
        assert_eq!(t.messages(), 2);
    }

    #[test]
    fn lossless_plan_keeps_send_outcome_identical() {
        let mut plain = torus8();
        let mut armed = torus8();
        armed.set_fault_plan(&FaultPlan::default());
        assert!(!armed.has_faults());
        for i in 0..50usize {
            let (src, dst) = (CmpId(i % 8), CmpId((i * 3) % 8));
            let t = Cycle::new(i as u64 * 7);
            assert_eq!(
                armed.send_outcome(src, dst, t),
                Some(plain.send(src, dst, t))
            );
        }
        assert_eq!(armed.fault_drops(), 0);
    }

    #[test]
    fn snapshot_round_trip_resumes_identical_traffic() {
        let mut plan = FaultPlan::lossless();
        plan.seed = 17;
        plan.torus_drop = 0.15;
        plan.torus_budget = 6;
        let mut live = torus8();
        live.set_fault_plan(&plan);
        for i in 0..100usize {
            live.send_outcome(CmpId(i % 8), CmpId((i * 5) % 8), Cycle::new(i as u64 * 9));
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&live);
        let mut resumed = torus8();
        resumed.set_fault_plan(&plan);
        flexsnoop_engine::snap::restore_bytes(&mut resumed, &bytes).unwrap();
        assert_eq!(resumed.messages(), live.messages());
        assert_eq!(resumed.fault_drops(), live.fault_drops());
        for i in 100..400usize {
            let (src, dst, t) = (CmpId(i % 8), CmpId((i * 5) % 8), Cycle::new(i as u64 * 9));
            assert_eq!(
                live.send_outcome(src, dst, t),
                resumed.send_outcome(src, dst, t),
                "step {i}"
            );
        }
    }

    #[test]
    fn armed_plan_drops_within_budget() {
        let mut plan = FaultPlan::lossless();
        plan.seed = 3;
        plan.torus_drop = 1.0;
        plan.torus_budget = 2;
        let mut t = torus8();
        t.set_fault_plan(&plan);
        assert!(t.has_faults());
        assert_eq!(t.send_outcome(CmpId(0), CmpId(1), Cycle::new(0)), None);
        assert_eq!(t.send_outcome(CmpId(0), CmpId(1), Cycle::new(0)), None);
        assert!(t.send_outcome(CmpId(0), CmpId(1), Cycle::new(0)).is_some());
        assert_eq!(t.fault_drops(), 2);
        // Dropped messages still occupied their links and were counted.
        assert_eq!(t.messages(), 3);
    }
}
