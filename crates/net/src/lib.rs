//! Interconnect substrate: embedded snoop ring(s) and the data network.
//!
//! The modeled machine (paper §2.2, Table 4) interconnects 8 CMPs with a
//! 2-D torus. On top of that physical network:
//!
//! * one or more **unidirectional rings** are logically embedded; *all* snoop
//!   requests and replies travel on a ring, hop by hop, CMP `i → i+1`.
//!   With multiple rings, a line's address selects its ring, balancing load.
//! * **data transfers** (cache-to-cache lines, memory traffic) use the
//!   regular torus links with dimension-order routing.
//!
//! Both networks model contention with per-link FIFO occupancy
//! ([`flexsnoop_engine::Resource`]): a message arriving at a busy link
//! queues behind earlier traffic.

pub mod fault;
pub mod ring;
pub mod torus;

pub use fault::{
    FaultPlan, FaultStats, HopOutcome, LinkDrop, PartitionWindow, RingFault, StallWindow,
    TorusFaultState,
};
pub use ring::{HierParams, RingConfig, RingNetwork};
pub use torus::{Torus, TorusConfig};
