//! The embedded unidirectional snoop ring(s).
//!
//! A ring of `n` nodes has `n` directed links, link `i` connecting CMP `i`
//! to CMP `(i+1) % n`. Snoop messages occupy a link for a configurable
//! serialization time (they are short control messages) and arrive
//! `hop_latency` cycles after leaving — Table 4's 39-cycle CMP-to-CMP
//! latency at 6 GHz.
//!
//! With `rings > 1` embedded rings, the line address picks the ring
//! (`line % rings`), mirroring the paper's two address-interleaved rings.
//!
//! ## Hierarchical topologies
//!
//! With [`RingConfig::hier`] set, the nodes are grouped into `groups`
//! local rings of `local` nodes each (`local × groups == nodes`), joined
//! by a unidirectional **global ring** whose members are the *bridge*
//! nodes — the first node of every group (`group * local`). Each
//! embedded ring keeps this same two-level shape, so address
//! interleaving composes with the hierarchy. Local hops use the flat
//! ring's `hop_latency`/`link_service`; global hops between bridges use
//! the (typically longer) `bridge_latency`/`bridge_service`. The flat
//! topology is exactly `hier: None`: same link layout, same latencies,
//! bit-identical behavior.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::{Cycle, Cycles, Resource};
use flexsnoop_mem::{CmpId, LineAddr};

use crate::fault::{FaultPlan, FaultState, FaultStats, HopOutcome, RingFault};

/// Shape and timing of a hierarchical (two-level) ring topology.
///
/// `local * groups` must equal the network's node count; node `n`
/// belongs to local ring `n / local`, and the first node of every group
/// (`group * local`) doubles as that group's **bridge** onto the global
/// ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierParams {
    /// Nodes per local ring.
    pub local: usize,
    /// Number of local rings (= number of bridge nodes on the global ring).
    pub groups: usize,
    /// Propagation latency of one bridge-to-bridge hop on the global ring.
    pub bridge_latency: Cycles,
    /// Link occupancy per message on a global-ring link.
    pub bridge_service: Cycles,
}

/// Static parameters of the embedded ring network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Number of CMP nodes on each ring.
    pub nodes: usize,
    /// Number of embedded rings (snoops are interleaved by address).
    pub rings: usize,
    /// Propagation latency of one CMP-to-CMP hop.
    pub hop_latency: Cycles,
    /// Link occupancy per message (serialization; limits ring bandwidth).
    pub link_service: Cycles,
    /// Two-level topology, or `None` for the paper's flat ring.
    pub hier: Option<HierParams>,
}

impl RingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero nodes
    /// or zero rings, or a hierarchy whose shape does not tile the nodes).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("ring must have at least one node".into());
        }
        if self.rings == 0 {
            return Err("at least one embedded ring is required".into());
        }
        if let Some(h) = self.hier {
            if h.local < 2 {
                return Err("hierarchical local rings need at least two nodes".into());
            }
            if h.groups < 2 {
                return Err("a hierarchy needs at least two local rings".into());
            }
            if h.local * h.groups != self.nodes {
                return Err(format!(
                    "hierarchy {}x{} does not tile {} nodes",
                    h.local, h.groups, self.nodes
                ));
            }
        }
        Ok(())
    }
}

/// The embedded ring network: per-ring, per-link occupancy tracking.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::{Cycle, Cycles};
/// use flexsnoop_mem::{CmpId, LineAddr};
/// use flexsnoop_net::{RingConfig, RingNetwork};
///
/// let mut net = RingNetwork::new(RingConfig {
///     nodes: 8,
///     rings: 2,
///     hop_latency: Cycles(39),
///     link_service: Cycles(4),
///     hier: None,
/// });
/// let ring = net.ring_for(LineAddr(5));
/// let arrival = net.send_hop(ring, CmpId(3), Cycle::new(100));
/// assert_eq!(arrival, Cycle::new(100 + 4 + 39));
/// ```
#[derive(Debug, Clone)]
pub struct RingNetwork {
    config: RingConfig,
    /// Directed link from `node` to its successor on `ring`, stored flat
    /// at index `ring * stride + node`: one contiguous allocation instead
    /// of a `Vec` per ring, so million-node networks stay cache-friendly
    /// and cost no per-ring indirection. On a hierarchical topology each
    /// ring's slice is `stride = nodes + groups` wide: the local links
    /// first, then the `groups` global-ring links (link `nodes + g`
    /// leaves the bridge of group `g`). Flat rings have `stride = nodes`
    /// — the exact layout this field always had.
    links: Vec<Resource>,
    messages_sent: u64,
    link_crossings: u64,
    /// Crossings of global-ring (bridge) links only; zero when flat.
    bridge_crossings: u64,
    /// Armed fault injection, if any (see [`crate::fault`]). `None` is
    /// the lossless fast path: no RNG, no per-hop overhead.
    faults: Option<FaultState>,
}

impl RingNetwork {
    /// Creates an idle ring network.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`RingConfig::validate`]).
    pub fn new(config: RingConfig) -> Self {
        config.validate().expect("invalid ring config");
        let stride = config.nodes + config.hier.map_or(0, |h| h.groups);
        Self {
            config,
            links: (0..config.rings * stride)
                .map(|_| Resource::new())
                .collect(),
            messages_sent: 0,
            link_crossings: 0,
            bridge_crossings: 0,
            faults: None,
        }
    }

    /// Links per embedded ring: the local links plus (when hierarchical)
    /// one global link per group.
    #[inline]
    fn stride(&self) -> usize {
        self.config.nodes + self.config.hier.map_or(0, |h| h.groups)
    }

    /// The flat index of the link leaving `from` on `ring`.
    ///
    /// # Panics
    ///
    /// Panics if `ring` or `from` are out of range.
    #[inline]
    fn link_index(&self, ring: usize, from: CmpId) -> usize {
        assert!(
            ring < self.config.rings && from.0 < self.config.nodes,
            "link ({ring}, {from}) out of range"
        );
        ring * self.stride() + from.0
    }

    /// The flat index of the global-ring link leaving the bridge of
    /// `from`'s group on `ring`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is flat or the indices are out of range.
    #[inline]
    fn global_link_index(&self, ring: usize, from: CmpId) -> usize {
        let h = self.config.hier.expect("global link on a flat ring");
        assert!(
            ring < self.config.rings && from.0 < self.config.nodes,
            "global link ({ring}, {from}) out of range"
        );
        ring * self.stride() + self.config.nodes + from.0 / h.local
    }

    /// Arms a fault plan; a lossless plan disarms injection entirely so
    /// the hot path stays RNG-free.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_lossless() {
            None
        } else {
            Some(FaultState::new(plan))
        };
    }

    /// Whether a (non-lossless) fault plan is armed.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Counters for faults injected so far (all zero when lossless).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
            .as_ref()
            .map(FaultState::stats)
            .unwrap_or_default()
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &RingConfig {
        &self.config
    }

    /// Which embedded ring carries snoops for `line`.
    pub fn ring_for(&self, line: LineAddr) -> usize {
        (line.0 % self.config.rings as u64) as usize
    }

    /// Sends one message over the link leaving `from` on ring `ring` at
    /// time `now`; returns its arrival time at the next node downstream,
    /// accounting for link occupancy (FIFO queueing) and propagation.
    ///
    /// Only valid on a lossless ring; callers that armed a fault plan
    /// must use [`Self::send_hop_outcome`] so drops and duplicates are
    /// observable.
    ///
    /// # Panics
    ///
    /// Panics if `ring` or `from` are out of range, or if a fault plan
    /// is armed.
    pub fn send_hop(&mut self, ring: usize, from: CmpId, now: Cycle) -> Cycle {
        assert!(
            self.faults.is_none(),
            "send_hop on an unreliable ring; use send_hop_outcome"
        );
        let idx = self.link_index(ring, from);
        let link = &mut self.links[idx];
        let grant = link.acquire(now, self.config.link_service);
        self.messages_sent += 1;
        self.link_crossings += 1;
        grant.end + self.config.hop_latency
    }

    /// [`Self::send_hop`] with fault injection: the message may be
    /// dropped, duplicated or delayed per the armed [`FaultPlan`], and a
    /// stall window covering `from` defers its departure.
    ///
    /// Dropped messages still occupy the link and count as crossings
    /// (the flit crosses part of the link before vanishing; energy is
    /// spent either way); a duplicate serializes behind the original on
    /// the same link. A hop whose link crosses an active partition
    /// boundary is refused: it occupies the link and counts, but never
    /// arrives, and no randomized fault is drawn for it (partitions are
    /// deterministic and budget-free). Without an armed plan this is
    /// exactly `send_hop`.
    ///
    /// # Panics
    ///
    /// Panics if `ring` or `from` are out of range.
    pub fn send_hop_outcome(&mut self, ring: usize, from: CmpId, now: Cycle) -> HopOutcome {
        let idx = self.link_index(ring, from);
        // On a hierarchical topology the link leaving `from` stays inside
        // its group, so partition islands see the true local endpoints.
        let to = self.next_node(from);
        let Some(faults) = &mut self.faults else {
            let link = &mut self.links[idx];
            let grant = link.acquire(now, self.config.link_service);
            self.messages_sent += 1;
            self.link_crossings += 1;
            return HopOutcome::delivered(grant.end + self.config.hop_latency);
        };
        let depart = faults.departure(from.0, now);
        if faults.partition_blocks(from.0, to.0, depart) {
            // The flit enters the link and is refused at the boundary:
            // occupancy and energy are real, delivery never happens. The
            // RNG stream does not advance, so a plan's randomized fault
            // schedule is identical with and without partition windows.
            let link = &mut self.links[idx];
            link.acquire(depart, self.config.link_service);
            self.messages_sent += 1;
            self.link_crossings += 1;
            // `fault: None`: a refusal is not a randomized fault, so the
            // probe's per-kind fault counters stay equal to the plan's
            // drop/duplicate/delay stats; the loss itself shows up in
            // `FaultStats::partition_blocked` and the timeline.
            return HopOutcome {
                arrival: None,
                duplicate: None,
                fault: None,
            };
        }
        let fault = faults.decide(ring, from.0);
        let link = &mut self.links[idx];
        let grant = link.acquire(depart, self.config.link_service);
        self.messages_sent += 1;
        self.link_crossings += 1;
        let base = grant.end + self.config.hop_latency;
        match fault {
            None => HopOutcome {
                arrival: Some(base),
                duplicate: None,
                fault: None,
            },
            Some(RingFault::Dropped) => HopOutcome {
                arrival: None,
                duplicate: None,
                fault: Some(RingFault::Dropped),
            },
            Some(RingFault::Duplicated) => {
                // The copy is a second real message: it serializes
                // behind the original and burns its own link crossing.
                let copy = link.acquire(grant.end, self.config.link_service);
                self.messages_sent += 1;
                self.link_crossings += 1;
                HopOutcome {
                    arrival: Some(base),
                    duplicate: Some(copy.end + self.config.hop_latency),
                    fault: Some(RingFault::Duplicated),
                }
            }
            Some(RingFault::Delayed(extra)) => HopOutcome {
                arrival: Some(base + extra),
                duplicate: None,
                fault: Some(RingFault::Delayed(extra)),
            },
        }
    }

    /// The node downstream of `from` on its **local** ring: the next node
    /// within `from`'s group (wrapping at the group boundary) on a
    /// hierarchical topology, the flat-ring successor otherwise.
    pub fn next_node(&self, from: CmpId) -> CmpId {
        match self.config.hier {
            None => from.next_on_ring(self.config.nodes),
            Some(h) => {
                let group = from.0 / h.local;
                CmpId(group * h.local + (from.0 % h.local + 1) % h.local)
            }
        }
    }

    /// Whether `node` is a bridge (the global-ring member of its group).
    /// Always `false` on a flat topology.
    pub fn is_bridge(&self, node: CmpId) -> bool {
        self.config
            .hier
            .is_some_and(|h| node.0.is_multiple_of(h.local))
    }

    /// The local ring `node` belongs to (`0` on a flat topology).
    pub fn group_of(&self, node: CmpId) -> usize {
        self.config.hier.map_or(0, |h| node.0 / h.local)
    }

    /// The bridge node downstream of `from`'s group on the global ring.
    ///
    /// # Panics
    ///
    /// Panics if the topology is flat.
    pub fn global_next(&self, from: CmpId) -> CmpId {
        let h = self.config.hier.expect("global hop on a flat ring");
        let group = from.0 / h.local;
        CmpId((group + 1) % h.groups * h.local)
    }

    /// Unloaded latency for a message to travel `hops` consecutive hops.
    pub fn unloaded_latency(&self, hops: usize) -> Cycles {
        (self.config.link_service + self.config.hop_latency) * hops as u64
    }

    /// Unloaded network latency of one full snoop circulation: every
    /// local hop of every group plus — on a hierarchical topology — one
    /// lap of the global ring. On a flat ring this is exactly
    /// `unloaded_latency(nodes)`, so recovery timeout floors derived
    /// from it are unchanged for existing configurations.
    pub fn unloaded_circulation_latency(&self) -> Cycles {
        let local = self.unloaded_latency(self.config.nodes);
        match self.config.hier {
            None => local,
            Some(h) => local + (h.bridge_service + h.bridge_latency) * h.groups as u64,
        }
    }

    /// Sends one message over the global-ring link leaving the bridge of
    /// `from`'s group at time `now`. Stall windows covering the bridge
    /// defer the departure, partition windows between the two bridge
    /// endpoints refuse the hop, and the bridge fault stream
    /// ([`FaultPlan::bridge_drop`]) may drop it; bridges never duplicate
    /// or delay. Counts toward [`Self::bridge_crossings`].
    ///
    /// # Panics
    ///
    /// Panics if the topology is flat or the indices are out of range.
    pub fn send_global_hop_outcome(&mut self, ring: usize, from: CmpId, now: Cycle) -> HopOutcome {
        let h = self.config.hier.expect("global hop on a flat ring");
        let idx = self.global_link_index(ring, from);
        let bridge = CmpId(from.0 / h.local * h.local);
        let to = self.global_next(from);
        self.messages_sent += 1;
        self.link_crossings += 1;
        self.bridge_crossings += 1;
        let Some(faults) = &mut self.faults else {
            let grant = self.links[idx].acquire(now, h.bridge_service);
            return HopOutcome::delivered(grant.end + h.bridge_latency);
        };
        let depart = faults.departure(bridge.0, now);
        if faults.partition_blocks(bridge.0, to.0, depart) {
            // Same contract as the local-ring refusal: occupancy and
            // energy are real, delivery never happens, no RNG advances.
            self.links[idx].acquire(depart, h.bridge_service);
            return HopOutcome {
                arrival: None,
                duplicate: None,
                fault: None,
            };
        }
        let fault = faults.decide_bridge();
        let grant = self.links[idx].acquire(depart, h.bridge_service);
        match fault {
            None => HopOutcome::delivered(grant.end + h.bridge_latency),
            Some(f) => HopOutcome {
                arrival: None,
                duplicate: None,
                fault: Some(f),
            },
        }
    }

    /// Total crossings of global-ring (bridge) links; zero when flat.
    pub fn bridge_crossings(&self) -> u64 {
        self.bridge_crossings
    }

    /// Total messages sent over any link (each hop counts once); this is
    /// the quantity Figure 7 reports, aggregated over a run.
    pub fn link_crossings(&self) -> u64 {
        self.link_crossings
    }

    /// Total busy cycles over all links of all rings (for utilization).
    pub fn total_busy(&self) -> Cycles {
        self.links.iter().map(|l| l.busy_cycles()).sum()
    }

    /// Estimated heap footprint of the network in bytes (the flat link
    /// array dominates; fault state is bounded and ignored).
    pub fn footprint_bytes(&self) -> u64 {
        (size_of::<Self>() + self.links.capacity() * size_of::<Resource>()) as u64
    }
}

/// Serializes link occupancy, traffic counters, and the live fault-stream
/// state. The config and fault *plan* are not serialized: the restore
/// target must be built from the same `RingConfig` and have the matching
/// fault plan armed first (lossless ⇔ lossless), which the restore checks.
impl Snapshot for RingNetwork {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.links.len());
        for link in &self.links {
            link.save_into(w);
        }
        w.put_u64(self.messages_sent);
        w.put_u64(self.link_crossings);
        w.put_u64(self.bridge_crossings);
        match &self.faults {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                f.save_into(w);
            }
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.links.len() {
            return Err(SnapError::Corrupt("ring link count does not match config"));
        }
        for link in &mut self.links {
            link.restore_from(r)?;
        }
        self.messages_sent = r.get_u64()?;
        self.link_crossings = r.get_u64()?;
        self.bridge_crossings = r.get_u64()?;
        let had_faults = r.get_bool()?;
        match (&mut self.faults, had_faults) {
            (None, false) => {}
            (Some(f), true) => f.restore_from(r)?,
            (None, true) => {
                return Err(SnapError::Corrupt(
                    "snapshot has ring fault state but no plan is armed",
                ));
            }
            (Some(_), false) => {
                return Err(SnapError::Corrupt(
                    "a fault plan is armed but the snapshot ring was lossless",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> RingNetwork {
        RingNetwork::new(RingConfig {
            nodes: 8,
            rings: 2,
            hop_latency: Cycles(39),
            link_service: Cycles(4),
            hier: None,
        })
    }

    fn hier_net() -> RingNetwork {
        RingNetwork::new(RingConfig {
            nodes: 8,
            rings: 2,
            hop_latency: Cycles(39),
            link_service: Cycles(4),
            hier: Some(HierParams {
                local: 4,
                groups: 2,
                bridge_latency: Cycles(60),
                bridge_service: Cycles(8),
            }),
        })
    }

    #[test]
    fn every_node_belongs_to_exactly_one_local_ring() {
        // Ownership partition: the local rings tile the machine with no
        // overlap and no gap, each group's local orbit stays inside the
        // group with full period, and one global lap visits every
        // group's bridge exactly once.
        for (local, groups) in [(2usize, 4usize), (4, 4), (8, 8), (3, 5)] {
            let nodes = local * groups;
            let n = RingNetwork::new(RingConfig {
                nodes,
                rings: 1,
                hop_latency: Cycles(39),
                link_service: Cycles(4),
                hier: Some(HierParams {
                    local,
                    groups,
                    bridge_latency: Cycles(60),
                    bridge_service: Cycles(8),
                }),
            });
            for g in 0..groups {
                let members: Vec<usize> =
                    (0..nodes).filter(|&i| n.group_of(CmpId(i)) == g).collect();
                assert_eq!(members.len(), local, "{local}x{groups}: group {g} size");
                assert_eq!(
                    members.iter().filter(|&&i| n.is_bridge(CmpId(i))).count(),
                    1,
                    "{local}x{groups}: group {g} has exactly one bridge"
                );
                // The local orbit from any member cycles through exactly
                // the group, returning home after `local` hops.
                let start = CmpId(members[0]);
                let mut at = start;
                let mut visited = std::collections::HashSet::new();
                for _ in 0..local {
                    assert!(visited.insert(at.0), "local orbit revisited {at}");
                    assert_eq!(n.group_of(at), g, "local orbit left group {g}");
                    at = n.next_node(at);
                }
                assert_eq!(at, start, "{local}x{groups}: orbit period is `local`");
            }
            // One global lap from any bridge visits every group once.
            let first_bridge = (0..nodes).map(CmpId).find(|&i| n.is_bridge(i)).unwrap();
            let mut at = first_bridge;
            let mut groups_seen = std::collections::HashSet::new();
            for _ in 0..groups {
                assert!(n.is_bridge(at), "global lap landed off-bridge at {at}");
                assert!(groups_seen.insert(n.group_of(at)), "global lap revisited");
                at = n.global_next(at);
            }
            assert_eq!(at, first_bridge, "{local}x{groups}: global lap closes");
            assert_eq!(groups_seen.len(), groups);
        }
    }

    #[test]
    fn hop_includes_service_and_propagation() {
        let mut n = net();
        let t = n.send_hop(0, CmpId(0), Cycle::new(0));
        assert_eq!(t, Cycle::new(43));
    }

    #[test]
    fn contention_queues_on_same_link() {
        let mut n = net();
        let a = n.send_hop(0, CmpId(0), Cycle::new(0));
        let b = n.send_hop(0, CmpId(0), Cycle::new(0));
        assert_eq!(a, Cycle::new(43));
        assert_eq!(b, Cycle::new(47), "second message serializes behind first");
    }

    #[test]
    fn different_links_do_not_contend() {
        let mut n = net();
        let a = n.send_hop(0, CmpId(0), Cycle::new(0));
        let b = n.send_hop(0, CmpId(1), Cycle::new(0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_rings_do_not_contend() {
        let mut n = net();
        let a = n.send_hop(0, CmpId(0), Cycle::new(0));
        let b = n.send_hop(1, CmpId(0), Cycle::new(0));
        assert_eq!(a, b);
    }

    #[test]
    fn address_interleaving_across_rings() {
        let n = net();
        assert_eq!(n.ring_for(LineAddr(10)), 0);
        assert_eq!(n.ring_for(LineAddr(11)), 1);
    }

    #[test]
    fn unloaded_latency_scales_with_hops() {
        let n = net();
        assert_eq!(n.unloaded_latency(0), Cycles(0));
        assert_eq!(n.unloaded_latency(3), Cycles(3 * 43));
    }

    #[test]
    fn crossing_counter_accumulates() {
        let mut n = net();
        for i in 0..5 {
            n.send_hop(0, CmpId(i % 8), Cycle::new(i as u64 * 100));
        }
        assert_eq!(n.link_crossings(), 5);
    }

    #[test]
    fn lossless_outcome_matches_send_hop() {
        let mut a = net();
        let mut b = net();
        b.set_fault_plan(crate::fault::FaultPlan::lossless()); // stays disarmed
        for i in 0..20u64 {
            let from = CmpId((i % 8) as usize);
            let t = Cycle::new(i * 13);
            let plain = a.send_hop(0, from, t);
            let out = b.send_hop_outcome(0, from, t);
            assert_eq!(out, crate::fault::HopOutcome::delivered(plain));
        }
        assert_eq!(a.link_crossings(), b.link_crossings());
    }

    #[test]
    fn always_drop_plan_drops_everything() {
        let mut n = net();
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.drop = 1.0;
        plan.budget = u64::MAX;
        n.set_fault_plan(plan);
        let out = n.send_hop_outcome(0, CmpId(0), Cycle::new(0));
        assert_eq!(out.arrival, None);
        assert_eq!(out.fault, Some(crate::fault::RingFault::Dropped));
        assert_eq!(n.fault_stats().drops, 1);
        assert_eq!(n.link_crossings(), 1, "a dropped flit still crossed");
    }

    #[test]
    fn duplicate_serializes_behind_original() {
        let mut n = net();
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.duplicate = 1.0;
        plan.budget = 1;
        n.set_fault_plan(plan);
        let out = n.send_hop_outcome(0, CmpId(0), Cycle::new(0));
        assert_eq!(out.arrival, Some(Cycle::new(43)));
        assert_eq!(out.duplicate, Some(Cycle::new(47)));
        assert_eq!(n.fault_stats().duplicates, 1);
        assert_eq!(n.link_crossings(), 2, "the copy is a real crossing");
        // Budget spent: the next crossing is clean.
        let out = n.send_hop_outcome(0, CmpId(1), Cycle::new(0));
        assert_eq!(out.fault, None);
    }

    #[test]
    fn stall_window_defers_departure() {
        let mut n = net();
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.stalls.push(crate::fault::StallWindow {
            node: 2,
            from: Cycle::new(0),
            until: Cycle::new(100),
        });
        n.set_fault_plan(plan);
        let out = n.send_hop_outcome(0, CmpId(2), Cycle::new(10));
        assert_eq!(out.arrival, Some(Cycle::new(143)));
        assert_eq!(n.fault_stats().stall_hits, 1);
        assert_eq!(n.fault_stats().stall_cycles, 90);
    }

    #[test]
    fn partition_refuses_cross_island_hops_until_heal() {
        let mut n = net();
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.partitions.push(crate::fault::PartitionWindow {
            islands: vec![0, 0, 0, 0, 1, 1, 1, 1],
            from: Cycle::new(0),
            until: Cycle::new(1_000),
        });
        n.set_fault_plan(plan);
        // Boundary link 3 -> 4 is refused while partitioned.
        let out = n.send_hop_outcome(0, CmpId(3), Cycle::new(10));
        assert_eq!(out.arrival, None);
        assert_eq!(out.fault, None, "a refusal is not a randomized fault");
        assert_eq!(n.link_crossings(), 1, "the refused flit still crossed");
        // Intra-island hops are untouched.
        let out = n.send_hop_outcome(0, CmpId(0), Cycle::new(10));
        assert_eq!(out.arrival, Some(Cycle::new(53)));
        // After the heal the boundary link delivers again.
        let out = n.send_hop_outcome(0, CmpId(3), Cycle::new(1_000));
        assert!(out.arrival.is_some());
        assert_eq!(n.fault_stats().partition_blocked, 1);
    }

    #[test]
    fn partition_refusal_does_not_shift_the_fault_stream() {
        // A plan with partitions injects exactly the same randomized
        // faults, at the same crossings, as the same plan without them.
        let mut base = crate::fault::FaultPlan::random(55, 8, 2);
        base.budget = 6;
        let mut split = base.clone();
        split.partitions.push(crate::fault::PartitionWindow {
            islands: vec![0, 0, 0, 0, 1, 1, 1, 1],
            from: Cycle::new(0),
            until: Cycle::new(500),
        });
        let mut a = net();
        a.set_fault_plan(base);
        let mut b = net();
        b.set_fault_plan(split);
        // Drive only intra-island links so both rings see identical
        // deliverable traffic; the RNG streams must stay in lockstep.
        for i in 0..2_000u64 {
            let from = CmpId((i % 3) as usize); // links 0,1,2 stay in island 0
            let t = Cycle::new(i * 3);
            assert_eq!(
                a.send_hop_outcome(0, from, t),
                b.send_hop_outcome(0, from, t),
                "step {i}"
            );
        }
        assert_eq!(a.fault_stats().injected(), b.fault_stats().injected());
    }

    #[test]
    fn snapshot_round_trip_resumes_identical_traffic() {
        let mut plan = crate::fault::FaultPlan::random(55, 8, 2);
        plan.budget = 10;
        let mut live = net();
        live.set_fault_plan(plan.clone());
        for i in 0..200u64 {
            live.send_hop_outcome((i % 2) as usize, CmpId((i % 8) as usize), Cycle::new(i * 3));
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&live);
        let mut resumed = net();
        resumed.set_fault_plan(plan);
        flexsnoop_engine::snap::restore_bytes(&mut resumed, &bytes).unwrap();
        assert_eq!(resumed.link_crossings(), live.link_crossings());
        assert_eq!(resumed.fault_stats(), live.fault_stats());
        assert_eq!(resumed.total_busy(), live.total_busy());
        // Future traffic is bit-identical: same queueing, same faults.
        for i in 200..600u64 {
            let (ring, from, t) = ((i % 2) as usize, CmpId((i % 8) as usize), Cycle::new(i * 3));
            assert_eq!(
                live.send_hop_outcome(ring, from, t),
                resumed.send_hop_outcome(ring, from, t),
                "step {i}"
            );
        }
    }

    #[test]
    fn snapshot_restore_rejects_fault_plan_mismatch() {
        let mut live = net();
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.drop = 0.5;
        plan.budget = 5;
        live.set_fault_plan(plan);
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&live);
        // Restoring onto a lossless ring must fail loudly, not silently
        // continue without the fault schedule.
        let mut fresh = net();
        let err = flexsnoop_engine::snap::restore_bytes(&mut fresh, &bytes).unwrap_err();
        assert!(matches!(err, flexsnoop_engine::snap::SnapError::Corrupt(_)));
    }

    #[test]
    #[should_panic(expected = "send_hop on an unreliable ring")]
    fn send_hop_rejects_armed_faults() {
        let mut n = net();
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.drop = 0.5;
        plan.budget = 1;
        n.set_fault_plan(plan);
        n.send_hop(0, CmpId(0), Cycle::new(0));
    }

    #[test]
    #[should_panic(expected = "invalid ring config")]
    fn zero_rings_rejected() {
        RingNetwork::new(RingConfig {
            nodes: 8,
            rings: 0,
            hop_latency: Cycles(39),
            link_service: Cycles(4),
            hier: None,
        });
    }

    #[test]
    fn hier_shape_must_tile_the_nodes() {
        let mut cfg = RingConfig {
            nodes: 8,
            rings: 1,
            hop_latency: Cycles(39),
            link_service: Cycles(4),
            hier: Some(HierParams {
                local: 3,
                groups: 2,
                bridge_latency: Cycles(60),
                bridge_service: Cycles(8),
            }),
        };
        assert!(cfg.validate().is_err(), "3x2 does not tile 8 nodes");
        cfg.hier = Some(HierParams {
            local: 4,
            groups: 2,
            bridge_latency: Cycles(60),
            bridge_service: Cycles(8),
        });
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn hier_topology_helpers() {
        let n = hier_net();
        // Groups: {0..4} and {4..8}; bridges are 0 and 4.
        assert!(n.is_bridge(CmpId(0)));
        assert!(n.is_bridge(CmpId(4)));
        assert!(!n.is_bridge(CmpId(1)));
        assert_eq!(n.group_of(CmpId(3)), 0);
        assert_eq!(n.group_of(CmpId(4)), 1);
        // Local successor wraps inside the group.
        assert_eq!(n.next_node(CmpId(2)), CmpId(3));
        assert_eq!(n.next_node(CmpId(3)), CmpId(0));
        assert_eq!(n.next_node(CmpId(7)), CmpId(4));
        // Global successor hops bridge-to-bridge.
        assert_eq!(n.global_next(CmpId(0)), CmpId(4));
        assert_eq!(n.global_next(CmpId(6)), CmpId(0));
        // Flat networks have no bridges and group 0 everywhere.
        let flat = net();
        assert!(!flat.is_bridge(CmpId(0)));
        assert_eq!(flat.group_of(CmpId(7)), 0);
        assert_eq!(flat.next_node(CmpId(7)), CmpId(0));
    }

    #[test]
    fn global_hop_uses_bridge_timing_and_counts() {
        let mut n = hier_net();
        let out = n.send_global_hop_outcome(0, CmpId(2), Cycle::new(0));
        assert_eq!(out, HopOutcome::delivered(Cycle::new(8 + 60)));
        assert_eq!(n.bridge_crossings(), 1);
        assert_eq!(n.link_crossings(), 1);
        // The two bridges' global links are distinct resources; the
        // local link leaving node 0 is yet another.
        let other = n.send_global_hop_outcome(0, CmpId(5), Cycle::new(0));
        assert_eq!(other, HopOutcome::delivered(Cycle::new(68)));
        let local = n.send_hop(0, CmpId(0), Cycle::new(0));
        assert_eq!(
            local,
            Cycle::new(43),
            "local links do not contend with bridges"
        );
        // Same group's global link queues FIFO.
        let queued = n.send_global_hop_outcome(0, CmpId(3), Cycle::new(0));
        assert_eq!(queued, HopOutcome::delivered(Cycle::new(16 + 60)));
    }

    #[test]
    fn hier_circulation_latency_adds_the_global_lap() {
        let n = hier_net();
        assert_eq!(
            n.unloaded_circulation_latency(),
            Cycles(8 * 43 + 2 * 68),
            "8 local hops plus 2 bridge hops"
        );
        let flat = net();
        assert_eq!(
            flat.unloaded_circulation_latency(),
            flat.unloaded_latency(8)
        );
    }

    #[test]
    fn bridge_drops_come_from_their_own_stream() {
        let mut n = hier_net();
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.seed = 5;
        plan.bridge_drop = 1.0;
        plan.bridge_budget = 2;
        n.set_fault_plan(plan);
        // Local hops are untouched by a bridge-only plan.
        let local = n.send_hop_outcome(0, CmpId(1), Cycle::new(0));
        assert!(local.arrival.is_some());
        // The first two global hops drop, then the budget is spent.
        let a = n.send_global_hop_outcome(0, CmpId(0), Cycle::new(0));
        assert_eq!(a.fault, Some(crate::fault::RingFault::Dropped));
        assert_eq!(a.arrival, None);
        let b = n.send_global_hop_outcome(0, CmpId(4), Cycle::new(0));
        assert_eq!(b.fault, Some(crate::fault::RingFault::Dropped));
        let c = n.send_global_hop_outcome(0, CmpId(0), Cycle::new(100));
        assert_eq!(c.fault, None);
        assert!(c.arrival.is_some());
        assert_eq!(n.fault_stats().bridge_drops, 2);
        assert_eq!(
            n.fault_stats().injected(),
            0,
            "bridge drops have their own budget"
        );
    }

    #[test]
    fn partition_between_groups_refuses_global_hops() {
        let mut n = hier_net();
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.partitions.push(crate::fault::PartitionWindow {
            islands: vec![0, 0, 0, 0, 1, 1, 1, 1],
            from: Cycle::new(0),
            until: Cycle::new(1_000),
        });
        n.set_fault_plan(plan);
        // Local hops never cross the island boundary (groups align with
        // islands), so they all deliver.
        for node in 0..8 {
            let out = n.send_hop_outcome(0, CmpId(node), Cycle::new(10));
            assert!(out.arrival.is_some(), "local hop {node} refused");
        }
        // Every global hop crosses it and is refused until the heal.
        let out = n.send_global_hop_outcome(0, CmpId(0), Cycle::new(10));
        assert_eq!(out.arrival, None);
        assert_eq!(out.fault, None);
        let out = n.send_global_hop_outcome(0, CmpId(4), Cycle::new(10));
        assert_eq!(out.arrival, None);
        assert_eq!(n.fault_stats().partition_blocked, 2);
        let out = n.send_global_hop_outcome(0, CmpId(0), Cycle::new(1_000));
        assert!(out.arrival.is_some(), "heals at until");
    }

    #[test]
    fn hier_snapshot_round_trip_preserves_bridge_state() {
        let mut plan = crate::fault::FaultPlan::lossless();
        plan.seed = 31;
        plan.bridge_drop = 0.4;
        plan.bridge_budget = 6;
        let mut live = hier_net();
        live.set_fault_plan(plan.clone());
        for i in 0..100u64 {
            live.send_hop_outcome((i % 2) as usize, CmpId((i % 8) as usize), Cycle::new(i * 3));
            if i % 4 == 0 {
                live.send_global_hop_outcome(
                    (i % 2) as usize,
                    CmpId((i % 8) as usize),
                    Cycle::new(i * 3),
                );
            }
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&live);
        let mut resumed = hier_net();
        resumed.set_fault_plan(plan);
        flexsnoop_engine::snap::restore_bytes(&mut resumed, &bytes).unwrap();
        assert_eq!(resumed.bridge_crossings(), live.bridge_crossings());
        assert_eq!(resumed.fault_stats(), live.fault_stats());
        for i in 100..400u64 {
            let (ring, from, t) = ((i % 2) as usize, CmpId((i % 8) as usize), Cycle::new(i * 3));
            assert_eq!(
                live.send_global_hop_outcome(ring, from, t),
                resumed.send_global_hop_outcome(ring, from, t),
                "step {i}"
            );
        }
    }
}
