//! The embedded unidirectional snoop ring(s).
//!
//! A ring of `n` nodes has `n` directed links, link `i` connecting CMP `i`
//! to CMP `(i+1) % n`. Snoop messages occupy a link for a configurable
//! serialization time (they are short control messages) and arrive
//! `hop_latency` cycles after leaving — Table 4's 39-cycle CMP-to-CMP
//! latency at 6 GHz.
//!
//! With `rings > 1` embedded rings, the line address picks the ring
//! (`line % rings`), mirroring the paper's two address-interleaved rings.

use flexsnoop_engine::{Cycle, Cycles, Resource};
use flexsnoop_mem::{CmpId, LineAddr};

/// Static parameters of the embedded ring network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Number of CMP nodes on each ring.
    pub nodes: usize,
    /// Number of embedded rings (snoops are interleaved by address).
    pub rings: usize,
    /// Propagation latency of one CMP-to-CMP hop.
    pub hop_latency: Cycles,
    /// Link occupancy per message (serialization; limits ring bandwidth).
    pub link_service: Cycles,
}

impl RingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint (zero nodes
    /// or zero rings).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("ring must have at least one node".into());
        }
        if self.rings == 0 {
            return Err("at least one embedded ring is required".into());
        }
        Ok(())
    }
}

/// The embedded ring network: per-ring, per-link occupancy tracking.
///
/// # Example
///
/// ```
/// use flexsnoop_engine::{Cycle, Cycles};
/// use flexsnoop_mem::{CmpId, LineAddr};
/// use flexsnoop_net::{RingConfig, RingNetwork};
///
/// let mut net = RingNetwork::new(RingConfig {
///     nodes: 8,
///     rings: 2,
///     hop_latency: Cycles(39),
///     link_service: Cycles(4),
/// });
/// let ring = net.ring_for(LineAddr(5));
/// let arrival = net.send_hop(ring, CmpId(3), Cycle::new(100));
/// assert_eq!(arrival, Cycle::new(100 + 4 + 39));
/// ```
#[derive(Debug, Clone)]
pub struct RingNetwork {
    config: RingConfig,
    /// `links[ring][node]` is the directed link from `node` to its successor.
    links: Vec<Vec<Resource>>,
    messages_sent: u64,
    link_crossings: u64,
}

impl RingNetwork {
    /// Creates an idle ring network.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`RingConfig::validate`]).
    pub fn new(config: RingConfig) -> Self {
        config.validate().expect("invalid ring config");
        Self {
            config,
            links: (0..config.rings)
                .map(|_| (0..config.nodes).map(|_| Resource::new()).collect())
                .collect(),
            messages_sent: 0,
            link_crossings: 0,
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &RingConfig {
        &self.config
    }

    /// Which embedded ring carries snoops for `line`.
    pub fn ring_for(&self, line: LineAddr) -> usize {
        (line.0 % self.config.rings as u64) as usize
    }

    /// Sends one message over the link leaving `from` on ring `ring` at
    /// time `now`; returns its arrival time at the next node downstream,
    /// accounting for link occupancy (FIFO queueing) and propagation.
    ///
    /// # Panics
    ///
    /// Panics if `ring` or `from` are out of range.
    pub fn send_hop(&mut self, ring: usize, from: CmpId, now: Cycle) -> Cycle {
        let link = &mut self.links[ring][from.0];
        let grant = link.acquire(now, self.config.link_service);
        self.messages_sent += 1;
        self.link_crossings += 1;
        grant.end + self.config.hop_latency
    }

    /// The node downstream of `from`.
    pub fn next_node(&self, from: CmpId) -> CmpId {
        from.next_on_ring(self.config.nodes)
    }

    /// Unloaded latency for a message to travel `hops` consecutive hops.
    pub fn unloaded_latency(&self, hops: usize) -> Cycles {
        (self.config.link_service + self.config.hop_latency) * hops as u64
    }

    /// Total messages sent over any link (each hop counts once); this is
    /// the quantity Figure 7 reports, aggregated over a run.
    pub fn link_crossings(&self) -> u64 {
        self.link_crossings
    }

    /// Total busy cycles over all links of all rings (for utilization).
    pub fn total_busy(&self) -> Cycles {
        self.links.iter().flatten().map(|l| l.busy_cycles()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> RingNetwork {
        RingNetwork::new(RingConfig {
            nodes: 8,
            rings: 2,
            hop_latency: Cycles(39),
            link_service: Cycles(4),
        })
    }

    #[test]
    fn hop_includes_service_and_propagation() {
        let mut n = net();
        let t = n.send_hop(0, CmpId(0), Cycle::new(0));
        assert_eq!(t, Cycle::new(43));
    }

    #[test]
    fn contention_queues_on_same_link() {
        let mut n = net();
        let a = n.send_hop(0, CmpId(0), Cycle::new(0));
        let b = n.send_hop(0, CmpId(0), Cycle::new(0));
        assert_eq!(a, Cycle::new(43));
        assert_eq!(b, Cycle::new(47), "second message serializes behind first");
    }

    #[test]
    fn different_links_do_not_contend() {
        let mut n = net();
        let a = n.send_hop(0, CmpId(0), Cycle::new(0));
        let b = n.send_hop(0, CmpId(1), Cycle::new(0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_rings_do_not_contend() {
        let mut n = net();
        let a = n.send_hop(0, CmpId(0), Cycle::new(0));
        let b = n.send_hop(1, CmpId(0), Cycle::new(0));
        assert_eq!(a, b);
    }

    #[test]
    fn address_interleaving_across_rings() {
        let n = net();
        assert_eq!(n.ring_for(LineAddr(10)), 0);
        assert_eq!(n.ring_for(LineAddr(11)), 1);
    }

    #[test]
    fn unloaded_latency_scales_with_hops() {
        let n = net();
        assert_eq!(n.unloaded_latency(0), Cycles(0));
        assert_eq!(n.unloaded_latency(3), Cycles(3 * 43));
    }

    #[test]
    fn crossing_counter_accumulates() {
        let mut n = net();
        for i in 0..5 {
            n.send_hop(0, CmpId(i % 8), Cycle::new(i as u64 * 100));
        }
        assert_eq!(n.link_crossings(), 5);
    }

    #[test]
    #[should_panic(expected = "invalid ring config")]
    fn zero_rings_rejected() {
        RingNetwork::new(RingConfig {
            nodes: 8,
            rings: 0,
            hop_latency: Cycles(39),
            link_service: Cycles(4),
        });
    }
}
