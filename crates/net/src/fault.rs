//! Deterministic fault injection for the embedded ring.
//!
//! The paper's correctness argument (§4.3.4) assumes a lossless ring:
//! every snoop request, reply and combined R/R message is delivered
//! exactly once. Real ring NoCs drop, duplicate and delay messages. A
//! [`FaultPlan`] describes a *bounded, seeded* schedule of such faults:
//!
//! * **drops** — a message crossing a link vanishes (per-link probability,
//!   optionally overridden for designated lossy links);
//! * **duplicates** — a second copy of the message serializes behind the
//!   original on the same link and arrives later;
//! * **delays** — the message arrives late by a bounded random amount
//!   (transient latency degradation);
//! * **stall windows** — a node is unable to forward for a fixed window
//!   of cycles; messages leaving it wait for the window to close.
//! * **partition windows** — the ring splits into islands for a fixed
//!   window of cycles; hops whose link crosses an island boundary are
//!   refused (the message is lost like a drop) until the partition
//!   heals. Recovery rides the same timeout/retry path as drops.
//!
//! Faults are drawn from the plan's own [`SplitMix64`] stream, so the
//! schedule is a pure function of `(plan, traffic)` — identical across
//! runs, queue backends and executor widths. The total number of
//! randomized faults is capped by [`FaultPlan::budget`]; once spent the
//! ring is lossless again, which both guarantees forward progress under
//! retry and makes failing schedules shrinkable by lowering the budget
//! (faults are consumed in draw order, so a smaller budget keeps a
//! prefix of the same schedule).
//!
//! The default plan ([`FaultPlan::lossless`]) injects nothing and draws
//! nothing: an unconfigured [`crate::RingNetwork`] behaves bit-for-bit
//! as before this module existed.
//!
//! The plan also covers the **torus data network**: `torus_drop` gives a
//! per-message drop probability for the idempotent data legs (memory
//! requests/replies and clean cache supplies), bounded by its own
//! `torus_budget` and drawn from a stream decorrelated from the ring's
//! (see [`TorusFaultState`]). Write-donation and writeback messages stay
//! reliable — losing them would silently discard dirty data, which no
//! timeout/retry scheme can recover without a value-level ack protocol.
//!
//! On hierarchical topologies the **bridge links** of the global ring
//! get their own drop stream: `bridge_drop` / `bridge_budget` bound a
//! drop schedule drawn from a third decorrelated stream
//! (`seed ^ BRIDGE_STREAM`), so lossy local rings and lossy bridges can
//! be injected — and shrunk — independently. Flat rings have no bridge
//! links and never consult this stream.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::{Cycle, Cycles, SplitMix64};

/// A window of cycles during which one node cannot forward messages.
///
/// Messages leaving the node inside `[from, until)` depart at `until`
/// instead (they still queue FIFO on the link afterwards). Stall windows
/// are part of the deterministic schedule and do not consume the random
/// fault budget — they end by construction, so they cannot threaten
/// forward progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallWindow {
    /// The stalled node.
    pub node: usize,
    /// First stalled cycle.
    pub from: Cycle,
    /// First cycle after the stall (departures resume here).
    pub until: Cycle,
}

impl StallWindow {
    /// Whether a departure at `now` from `node` is inside this window.
    pub fn covers(&self, node: usize, now: Cycle) -> bool {
        self.node == node && now >= self.from && now < self.until
    }
}

/// A window of cycles during which the ring is split into islands.
///
/// `islands[node]` is the island id of each node; nodes past the end of
/// the vector belong to island 0. While `now` is inside `[from, until)`,
/// any hop whose directed link leaves one island for another is refused:
/// the message is lost exactly like a dropped flit, and the requester
/// recovers through the ordinary timeout/retry path. At `until` the
/// partition heals and the ring is whole again. Like stall windows,
/// partitions are part of the deterministic schedule and consume no
/// random fault budget — they end by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionWindow {
    /// Island id per node (index = node id; missing entries are island 0).
    pub islands: Vec<usize>,
    /// First partitioned cycle.
    pub from: Cycle,
    /// First cycle after the heal (cross-island hops resume here).
    pub until: Cycle,
}

impl PartitionWindow {
    /// The island a node belongs to under this window.
    pub fn island_of(&self, node: usize) -> usize {
        self.islands.get(node).copied().unwrap_or(0)
    }

    /// Whether a hop from `from_node` to `to_node` departing at `now` is
    /// refused by this window.
    pub fn blocks(&self, from_node: usize, to_node: usize, now: Cycle) -> bool {
        now >= self.from && now < self.until && self.island_of(from_node) != self.island_of(to_node)
    }
}

/// A per-link drop-probability override (a designated lossy link).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDrop {
    /// Embedded ring index.
    pub ring: usize,
    /// Source node of the directed link.
    pub node: usize,
    /// Drop probability for messages crossing this link.
    pub prob: f64,
}

/// A seeded, bounded schedule of ring faults.
///
/// See the [module docs](self) for the fault taxonomy. All probabilities
/// are per link crossing. `budget` caps the total number of randomized
/// faults (drops + duplicates + delays) the plan may ever inject; a
/// budget of zero makes any plan lossless.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's private fault stream.
    pub seed: u64,
    /// Baseline per-crossing drop probability.
    pub drop: f64,
    /// Per-link drop overrides (first match wins).
    pub link_drops: Vec<LinkDrop>,
    /// Per-crossing duplication probability.
    pub duplicate: f64,
    /// Per-crossing delay probability.
    pub delay: f64,
    /// Maximum injected delay; actual delays are uniform in `[1, max]`.
    pub delay_max: Cycles,
    /// Deterministic node-stall windows.
    pub stalls: Vec<StallWindow>,
    /// Maximum number of randomized faults ever injected.
    pub budget: u64,
    /// Per-message drop probability on faultable torus data legs.
    pub torus_drop: f64,
    /// Maximum number of torus drops ever injected (separate stream and
    /// budget so ring schedules stay prefix-shrinkable on their own).
    pub torus_budget: u64,
    /// Deterministic ring-partition windows (islands that later heal).
    pub partitions: Vec<PartitionWindow>,
    /// Per-crossing drop probability on hierarchical bridge links.
    pub bridge_drop: f64,
    /// Maximum number of bridge drops ever injected (own stream and
    /// budget, decorrelated from the local-ring and torus schedules).
    pub bridge_budget: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::lossless()
    }
}

impl FaultPlan {
    /// The lossless plan: no faults, no RNG draws, zero overhead.
    pub fn lossless() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            link_drops: Vec::new(),
            duplicate: 0.0,
            delay: 0.0,
            delay_max: Cycles(0),
            stalls: Vec::new(),
            budget: 0,
            torus_drop: 0.0,
            torus_budget: 0,
            partitions: Vec::new(),
            bridge_drop: 0.0,
            bridge_budget: 0,
        }
    }

    /// Whether this plan can never perturb a message.
    pub fn is_lossless(&self) -> bool {
        let random_faults = self.budget > 0
            && (self.drop > 0.0
                || self.duplicate > 0.0
                || self.delay > 0.0
                || self.link_drops.iter().any(|l| l.prob > 0.0));
        !random_faults
            && self.stalls.is_empty()
            && self.partitions.is_empty()
            && !self.torus_faults()
            && !self.bridge_faults()
    }

    /// Whether this plan can drop torus data messages.
    pub fn torus_faults(&self) -> bool {
        self.torus_budget > 0 && self.torus_drop > 0.0
    }

    /// Whether this plan can drop messages on hierarchical bridge links.
    pub fn bridge_faults(&self) -> bool {
        self.bridge_budget > 0 && self.bridge_drop > 0.0
    }

    /// Drop probability for the directed link leaving `node` on `ring`.
    pub fn drop_for(&self, ring: usize, node: usize) -> f64 {
        self.link_drops
            .iter()
            .find(|l| l.ring == ring && l.node == node)
            .map_or(self.drop, |l| l.prob)
    }

    /// Draws a randomized plan for a `nodes × rings` ring, suitable for
    /// chaos campaigns: small per-crossing probabilities, a bounded
    /// budget in `[1, 30]`, (each with probability one half) one
    /// designated lossy link and one node-stall window, and (with
    /// probability one half) a torus drop probability with its own
    /// budget in `[1, 12]`. Torus draws come after every ring draw, and
    /// bridge draws (probability one half: a bridge drop probability
    /// with its own budget in `[1, 10]`) come last of all, so the
    /// earlier fields of a given seed are identical to plans drawn
    /// before the later fault classes existed.
    pub fn random(seed: u64, nodes: usize, rings: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let budget = 1 + rng.next_below(30);
        let drop = rng.next_f64() * 0.03;
        let duplicate = rng.next_f64() * 0.03;
        let delay = rng.next_f64() * 0.06;
        let delay_max = Cycles(50 + rng.next_below(450));
        let mut link_drops = Vec::new();
        if rng.chance(0.5) {
            link_drops.push(LinkDrop {
                ring: rng.next_below(rings as u64) as usize,
                node: rng.next_below(nodes as u64) as usize,
                prob: 0.1 + rng.next_f64() * 0.4,
            });
        }
        let mut stalls = Vec::new();
        if rng.chance(0.5) {
            let from = Cycle::new(rng.next_below(20_000));
            stalls.push(StallWindow {
                node: rng.next_below(nodes as u64) as usize,
                from,
                until: from + Cycles(100 + rng.next_below(3_000)),
            });
        }
        let (torus_drop, torus_budget) = if rng.chance(0.5) {
            (0.02 + rng.next_f64() * 0.10, 1 + rng.next_below(12))
        } else {
            (0.0, 0)
        };
        let (bridge_drop, bridge_budget) = if rng.chance(0.5) {
            (0.05 + rng.next_f64() * 0.20, 1 + rng.next_below(10))
        } else {
            (0.0, 0)
        };
        FaultPlan {
            seed,
            drop,
            link_drops,
            duplicate,
            delay,
            delay_max,
            stalls,
            budget,
            torus_drop,
            torus_budget,
            // Partition windows are never drawn randomly: adding a draw
            // here would shift the stream and change every pinned chaos
            // reproducer. Scenarios supply partitions explicitly.
            partitions: Vec::new(),
            bridge_drop,
            bridge_budget,
        }
    }

    /// Returns a copy with a smaller fault budget. Because randomized
    /// faults are consumed in draw order, the copy injects a prefix of
    /// this plan's fault schedule — the shrinking step of the chaos
    /// campaign. The torus budget (an independent stream) is clamped to
    /// the same bound so shrinking converges on both networks at once.
    pub fn with_budget(&self, budget: u64) -> Self {
        let mut plan = self.clone();
        plan.budget = budget;
        plan.torus_budget = plan.torus_budget.min(budget);
        plan.bridge_budget = plan.bridge_budget.min(budget);
        plan
    }

    /// One-line human description for logs and reproducer recipes.
    pub fn describe(&self) -> String {
        if self.is_lossless() {
            return "lossless".into();
        }
        let mut s = format!(
            "seed={} budget={} drop={:.4} dup={:.4} delay={:.4}x{}",
            self.seed, self.budget, self.drop, self.duplicate, self.delay, self.delay_max.0
        );
        for l in &self.link_drops {
            s.push_str(&format!(" lossy[r{}n{}]={:.3}", l.ring, l.node, l.prob));
        }
        for w in &self.stalls {
            s.push_str(&format!(
                " stall[n{}]={}..{}",
                w.node,
                w.from.as_u64(),
                w.until.as_u64()
            ));
        }
        if self.torus_faults() {
            s.push_str(&format!(
                " torus={:.4}/bgt{}",
                self.torus_drop, self.torus_budget
            ));
        }
        if self.bridge_faults() {
            s.push_str(&format!(
                " bridge={:.4}/bgt{}",
                self.bridge_drop, self.bridge_budget
            ));
        }
        for p in &self.partitions {
            let islands: Vec<String> = p.islands.iter().map(usize::to_string).collect();
            s.push_str(&format!(
                " partition[{}]={}..{}",
                islands.join(""),
                p.from.as_u64(),
                p.until.as_u64()
            ));
        }
        s
    }
}

/// Counters for faults actually injected by a ring network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped mid-link.
    pub drops: u64,
    /// Messages duplicated (one extra copy each).
    pub duplicates: u64,
    /// Messages delivered late.
    pub delays: u64,
    /// Total extra cycles added by injected delays.
    pub delay_cycles: u64,
    /// Departures deferred by a stall window.
    pub stall_hits: u64,
    /// Total cycles departures spent waiting out stall windows.
    pub stall_cycles: u64,
    /// Torus data messages dropped (bounded by `torus_budget`).
    pub torus_drops: u64,
    /// Hops refused because the link crossed a partition boundary.
    pub partition_blocked: u64,
    /// Messages dropped on hierarchical bridge links (bounded by
    /// `bridge_budget`; not part of [`FaultStats::injected`]).
    pub bridge_drops: u64,
}

impl FaultStats {
    /// Randomized ring faults injected (drops + duplicates + delays);
    /// the quantity bounded by [`FaultPlan::budget`]. Torus drops are
    /// counted separately in `torus_drops`.
    pub fn injected(&self) -> u64 {
        self.drops + self.duplicates + self.delays
    }
}

impl Snapshot for FaultStats {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.drops);
        w.put_u64(self.duplicates);
        w.put_u64(self.delays);
        w.put_u64(self.delay_cycles);
        w.put_u64(self.stall_hits);
        w.put_u64(self.stall_cycles);
        w.put_u64(self.torus_drops);
        w.put_u64(self.partition_blocked);
        w.put_u64(self.bridge_drops);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.drops = r.get_u64()?;
        self.duplicates = r.get_u64()?;
        self.delays = r.get_u64()?;
        self.delay_cycles = r.get_u64()?;
        self.stall_hits = r.get_u64()?;
        self.stall_cycles = r.get_u64()?;
        self.torus_drops = r.get_u64()?;
        self.partition_blocked = r.get_u64()?;
        self.bridge_drops = r.get_u64()?;
        Ok(())
    }
}

/// What the fault layer did to one link crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingFault {
    /// The message vanished; it will never arrive.
    Dropped,
    /// A second copy was enqueued behind the original.
    Duplicated,
    /// Delivery was deferred by the given extra cycles.
    Delayed(Cycles),
}

/// The outcome of sending one message over one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopOutcome {
    /// Arrival time of the message at the downstream node, or `None` if
    /// the message was dropped.
    pub arrival: Option<Cycle>,
    /// Arrival time of an injected duplicate copy, if one was created.
    pub duplicate: Option<Cycle>,
    /// The fault injected on this crossing, if any.
    pub fault: Option<RingFault>,
}

impl HopOutcome {
    /// A clean delivery at `at`.
    pub fn delivered(at: Cycle) -> Self {
        HopOutcome {
            arrival: Some(at),
            duplicate: None,
            fault: None,
        }
    }
}

/// Live fault-injection state attached to a ring network: the plan, its
/// private RNG stream, the remaining budget and the injected-fault
/// counters.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
    spent: u64,
    stats: FaultStats,
    bridge_rng: SplitMix64,
    bridge_spent: u64,
}

impl FaultState {
    /// Arms a plan. The RNG stream is derived from `plan.seed`; bridge
    /// drops draw from the decorrelated `plan.seed ^ BRIDGE_STREAM`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        let bridge_rng = SplitMix64::new(plan.seed ^ BRIDGE_STREAM);
        FaultState {
            plan,
            rng,
            spent: 0,
            stats: FaultStats::default(),
            bridge_rng,
            bridge_spent: 0,
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters for faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Randomized-fault budget still available.
    pub fn remaining_budget(&self) -> u64 {
        self.plan.budget.saturating_sub(self.spent)
    }

    /// Adjusts a departure time for stall windows covering `node`.
    pub fn departure(&mut self, node: usize, now: Cycle) -> Cycle {
        let mut depart = now;
        // Windows may abut; take the furthest `until` that still covers
        // the (possibly already deferred) departure.
        while let Some(w) = self
            .plan
            .stalls
            .iter()
            .find(|w| w.covers(node, depart))
            .copied()
        {
            self.stats.stall_hits += 1;
            self.stats.stall_cycles += (w.until - depart).0;
            depart = w.until;
        }
        depart
    }

    /// Whether a hop from `from_node` to `to_node` departing at `now`
    /// crosses a partition boundary. Counts refused hops; draws no RNG
    /// and spends no budget (partitions are deterministic, like stalls).
    pub fn partition_blocks(&mut self, from_node: usize, to_node: usize, now: Cycle) -> bool {
        if self
            .plan
            .partitions
            .iter()
            .any(|p| p.blocks(from_node, to_node, now))
        {
            self.stats.partition_blocked += 1;
            return true;
        }
        false
    }

    /// Draws the fault decision for one crossing of the link leaving
    /// `node` on `ring`. At most one randomized fault fires per
    /// crossing; once the budget is spent every crossing is clean and no
    /// RNG state advances.
    pub fn decide(&mut self, ring: usize, node: usize) -> Option<RingFault> {
        if self.spent >= self.plan.budget {
            return None;
        }
        let p_drop = self.plan.drop_for(ring, node);
        if p_drop > 0.0 && self.rng.chance(p_drop) {
            self.spent += 1;
            self.stats.drops += 1;
            return Some(RingFault::Dropped);
        }
        if self.plan.duplicate > 0.0 && self.rng.chance(self.plan.duplicate) {
            self.spent += 1;
            self.stats.duplicates += 1;
            return Some(RingFault::Duplicated);
        }
        if self.plan.delay > 0.0 && self.rng.chance(self.plan.delay) {
            let extra = Cycles(1 + self.rng.next_below(self.plan.delay_max.0.max(1)));
            self.spent += 1;
            self.stats.delays += 1;
            self.stats.delay_cycles += extra.0;
            return Some(RingFault::Delayed(extra));
        }
        None
    }

    /// Bridge-drop budget still available.
    pub fn remaining_bridge_budget(&self) -> u64 {
        self.plan.bridge_budget.saturating_sub(self.bridge_spent)
    }

    /// Draws the fault decision for one crossing of a hierarchical
    /// bridge link. Bridges only ever drop (their point is to exercise
    /// global-ring escalation retry); the drop schedule is drawn from
    /// its own stream with its own budget, so shrinking bridge faults
    /// never shifts the local-ring schedule and vice versa. Once the
    /// bridge budget is spent every crossing is clean and no RNG state
    /// advances.
    pub fn decide_bridge(&mut self) -> Option<RingFault> {
        if self.bridge_spent >= self.plan.bridge_budget || self.plan.bridge_drop <= 0.0 {
            return None;
        }
        if self.bridge_rng.chance(self.plan.bridge_drop) {
            self.bridge_spent += 1;
            self.stats.bridge_drops += 1;
            return Some(RingFault::Dropped);
        }
        None
    }
}

/// Serializes the RNG stream position, the spent budget, and the injected
/// counters. The plan itself is *not* serialized — it is configuration,
/// re-armed on the restore target before restoring (see the `Snapshot`
/// overlay contract). Re-arming a plan with a different budget is legal as
/// long as the budget covers the faults already spent: faults are consumed
/// in draw order, so the resumed run continues the same fault schedule
/// truncated at the new budget — the property chaos-shrinker bisection
/// relies on.
impl Snapshot for FaultState {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.rng.state());
        w.put_u64(self.spent);
        self.stats.save_into(w);
        w.put_u64(self.bridge_rng.state());
        w.put_u64(self.bridge_spent);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng = SplitMix64::new(r.get_u64()?);
        self.spent = r.get_u64()?;
        self.stats.restore_from(r)?;
        self.bridge_rng = SplitMix64::new(r.get_u64()?);
        self.bridge_spent = r.get_u64()?;
        Ok(())
    }
}

/// Stream-splitting constant xor-ed into the plan seed for the torus
/// fault stream, so ring and torus draw decorrelated sequences from the
/// same plan.
const TORUS_STREAM: u64 = 0x7052_D47A_5EED_CA05;

/// Stream-splitting constant xor-ed into the plan seed for the
/// bridge-link fault stream of hierarchical topologies.
const BRIDGE_STREAM: u64 = 0xB21D_6E5A_10CA_17E5;

/// Live fault-injection state for the torus data network.
///
/// The torus only ever *drops* messages (its point is to exercise the
/// memory-path retry), drawn in message order from a private stream
/// derived from the plan seed. Like the ring's [`FaultState`], once the
/// torus budget is spent every send is clean and no RNG state advances,
/// so lowering `torus_budget` keeps a prefix of the drop schedule.
#[derive(Debug, Clone)]
pub struct TorusFaultState {
    plan: FaultPlan,
    rng: SplitMix64,
    spent: u64,
    drops: u64,
}

impl TorusFaultState {
    /// Arms a plan. The RNG stream is `plan.seed ^ TORUS_STREAM`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed ^ TORUS_STREAM);
        TorusFaultState {
            plan,
            rng,
            spent: 0,
            drops: 0,
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Torus drops injected so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Torus-drop budget still available.
    pub fn remaining_budget(&self) -> u64 {
        self.plan.torus_budget.saturating_sub(self.spent)
    }

    /// Draws the drop decision for one faultable torus send. Returns
    /// `true` if the message is lost.
    pub fn decide(&mut self) -> bool {
        if self.spent >= self.plan.torus_budget || self.plan.torus_drop <= 0.0 {
            return false;
        }
        if self.rng.chance(self.plan.torus_drop) {
            self.spent += 1;
            self.drops += 1;
            return true;
        }
        false
    }
}

/// Same contract as [`FaultState`]'s impl: stream position, spent budget
/// and drop counter; the plan is re-armed from configuration.
impl Snapshot for TorusFaultState {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.rng.state());
        w.put_u64(self.spent);
        w.put_u64(self.drops);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng = SplitMix64::new(r.get_u64()?);
        self.spent = r.get_u64()?;
        self.drops = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_is_lossless() {
        assert!(FaultPlan::lossless().is_lossless());
        assert!(FaultPlan::default().is_lossless());
        // Nonzero probabilities with a zero budget still inject nothing.
        let mut p = FaultPlan::lossless();
        p.drop = 0.9;
        assert!(p.is_lossless());
        p.budget = 1;
        assert!(!p.is_lossless());
        // Torus-only faults make a plan lossy too.
        let mut t = FaultPlan::lossless();
        t.torus_drop = 0.5;
        assert!(t.is_lossless(), "zero torus budget injects nothing");
        t.torus_budget = 1;
        assert!(!t.is_lossless());
        assert!(t.torus_faults());
        assert!(t.describe().contains("torus=0.5000/bgt1"));
    }

    #[test]
    fn stall_window_coverage() {
        let w = StallWindow {
            node: 3,
            from: Cycle::new(10),
            until: Cycle::new(20),
        };
        assert!(!w.covers(3, Cycle::new(9)));
        assert!(w.covers(3, Cycle::new(10)));
        assert!(w.covers(3, Cycle::new(19)));
        assert!(!w.covers(3, Cycle::new(20)));
        assert!(!w.covers(4, Cycle::new(15)));
    }

    #[test]
    fn link_drop_overrides_baseline() {
        let mut p = FaultPlan::lossless();
        p.drop = 0.1;
        p.link_drops.push(LinkDrop {
            ring: 0,
            node: 2,
            prob: 0.9,
        });
        assert_eq!(p.drop_for(0, 2), 0.9);
        assert_eq!(p.drop_for(0, 3), 0.1);
        assert_eq!(p.drop_for(1, 2), 0.1);
    }

    #[test]
    fn budget_caps_randomized_faults() {
        let mut p = FaultPlan::lossless();
        p.drop = 1.0;
        p.budget = 3;
        let mut st = FaultState::new(p);
        let mut drops = 0;
        for _ in 0..100 {
            if st.decide(0, 0).is_some() {
                drops += 1;
            }
        }
        assert_eq!(drops, 3);
        assert_eq!(st.stats().drops, 3);
        assert_eq!(st.remaining_budget(), 0);
    }

    #[test]
    fn smaller_budget_is_a_prefix_of_the_schedule() {
        let plan = FaultPlan::random(77, 8, 2);
        let mut full = FaultState::new(plan.clone());
        let mut cut = FaultState::new(plan.with_budget(plan.budget.min(2)));
        let mut full_faults = Vec::new();
        let mut cut_faults = Vec::new();
        for i in 0..200_000u64 {
            let (ring, node) = ((i % 2) as usize, (i % 8) as usize);
            if let Some(f) = full.decide(ring, node) {
                full_faults.push((i, f));
            }
            if let Some(f) = cut.decide(ring, node) {
                cut_faults.push((i, f));
            }
        }
        let k = cut_faults.len();
        assert!(k <= 2);
        assert_eq!(&full_faults[..k], &cut_faults[..]);
    }

    #[test]
    fn random_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::random(5, 8, 2);
        let b = FaultPlan::random(5, 8, 2);
        assert_eq!(a, b);
        assert!((1..=30).contains(&a.budget));
        assert!(!a.is_lossless());
        assert!(a.describe().contains("seed=5"));
    }

    #[test]
    fn torus_budget_caps_drops_and_shrinks_to_a_prefix() {
        let mut p = FaultPlan::lossless();
        p.seed = 9;
        p.torus_drop = 1.0;
        p.torus_budget = 5;
        let mut st = TorusFaultState::new(p.clone());
        let drops = (0..100).filter(|_| st.decide()).count();
        assert_eq!(drops, 5);
        assert_eq!(st.drops(), 5);
        assert_eq!(st.remaining_budget(), 0);

        // Lower torus_drop so not every draw fires; a smaller budget
        // must keep a prefix of the full drop schedule.
        p.torus_drop = 0.3;
        p.torus_budget = 8;
        let mut full = TorusFaultState::new(p.clone());
        let mut cut = TorusFaultState::new(p.with_budget(2));
        let full_hits: Vec<u64> = (0..10_000u64).filter(|_| full.decide()).collect();
        let cut_hits: Vec<u64> = (0..10_000u64).filter(|_| cut.decide()).collect();
        assert!(cut_hits.len() <= 2);
        assert_eq!(&full_hits[..cut_hits.len()], &cut_hits[..]);
    }

    #[test]
    fn fault_state_snapshot_resumes_identical_stream() {
        let plan = FaultPlan::random(123, 8, 2);
        let mut live = FaultState::new(plan.clone());
        for i in 0..5_000u64 {
            live.decide((i % 2) as usize, (i % 8) as usize);
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&live);
        let mut resumed = FaultState::new(plan);
        flexsnoop_engine::snap::restore_bytes(&mut resumed, &bytes).unwrap();
        assert_eq!(resumed.stats(), live.stats());
        assert_eq!(resumed.remaining_budget(), live.remaining_budget());
        for i in 0..20_000u64 {
            let (ring, node) = ((i % 2) as usize, (i % 8) as usize);
            assert_eq!(live.decide(ring, node), resumed.decide(ring, node));
        }
    }

    #[test]
    fn torus_fault_state_snapshot_resumes_identical_stream() {
        let mut p = FaultPlan::lossless();
        p.seed = 41;
        p.torus_drop = 0.2;
        p.torus_budget = 10;
        let mut live = TorusFaultState::new(p.clone());
        for _ in 0..50 {
            live.decide();
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&live);
        let mut resumed = TorusFaultState::new(p);
        flexsnoop_engine::snap::restore_bytes(&mut resumed, &bytes).unwrap();
        assert_eq!(resumed.drops(), live.drops());
        for _ in 0..1_000 {
            assert_eq!(live.decide(), resumed.decide());
        }
    }

    #[test]
    fn snapshot_resume_under_smaller_budget_truncates_schedule() {
        // The property chaos bisection relies on: resuming a snapshot into
        // a plan with budget b >= spent behaves exactly like a from-scratch
        // run with budget b.
        let mut plan = FaultPlan::random(7, 8, 2);
        plan.budget = 20;
        let mut live = FaultState::new(plan.clone());
        let mut step = 0u64;
        // Run until 3 faults are spent, then snapshot.
        while live.stats().injected() < 3 {
            live.decide((step % 2) as usize, (step % 8) as usize);
            step += 1;
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&live);

        for b in [3u64, 5, 20] {
            let mut resumed = FaultState::new(plan.with_budget(b));
            flexsnoop_engine::snap::restore_bytes(&mut resumed, &bytes).unwrap();
            let mut scratch = FaultState::new(plan.with_budget(b));
            // Replay the pre-snapshot traffic into the scratch run.
            for i in 0..step {
                scratch.decide((i % 2) as usize, (i % 8) as usize);
            }
            assert_eq!(scratch.stats(), resumed.stats(), "budget {b}");
            for i in step..step + 50_000 {
                let (ring, node) = ((i % 2) as usize, (i % 8) as usize);
                assert_eq!(
                    scratch.decide(ring, node),
                    resumed.decide(ring, node),
                    "budget {b}, step {i}"
                );
            }
        }
    }

    #[test]
    fn partition_window_blocks_only_cross_island_hops_in_window() {
        let w = PartitionWindow {
            islands: vec![0, 0, 0, 0, 1, 1, 1, 1],
            from: Cycle::new(100),
            until: Cycle::new(200),
        };
        // Hop 3 -> 4 crosses the boundary; 0 -> 1 stays inside island 0.
        assert!(w.blocks(3, 4, Cycle::new(100)));
        assert!(w.blocks(7, 0, Cycle::new(199)), "wraparound link crosses");
        assert!(!w.blocks(0, 1, Cycle::new(150)));
        assert!(!w.blocks(3, 4, Cycle::new(99)));
        assert!(!w.blocks(3, 4, Cycle::new(200)), "healed at until");
        // Nodes past the islands vector belong to island 0.
        assert!(w.blocks(4, 9, Cycle::new(150)));
        assert!(!w.blocks(0, 9, Cycle::new(150)));
    }

    #[test]
    fn partitioned_plan_is_not_lossless_and_describes_itself() {
        let mut p = FaultPlan::lossless();
        p.partitions.push(PartitionWindow {
            islands: vec![0, 0, 1, 1],
            from: Cycle::new(10),
            until: Cycle::new(20),
        });
        assert!(!p.is_lossless());
        assert!(
            p.describe().contains("partition[0011]=10..20"),
            "{}",
            p.describe()
        );
        // with_budget leaves the deterministic windows intact.
        assert_eq!(p.with_budget(0).partitions, p.partitions);
    }

    #[test]
    fn partition_blocks_counts_without_spending_budget() {
        let mut p = FaultPlan::lossless();
        p.drop = 1.0;
        p.budget = 1;
        p.partitions.push(PartitionWindow {
            islands: vec![0, 1],
            from: Cycle::new(0),
            until: Cycle::new(100),
        });
        let mut st = FaultState::new(p);
        assert!(st.partition_blocks(0, 1, Cycle::new(50)));
        assert!(st.partition_blocks(1, 0, Cycle::new(50)));
        assert!(!st.partition_blocks(0, 1, Cycle::new(100)));
        assert_eq!(st.stats().partition_blocked, 2);
        assert_eq!(st.remaining_budget(), 1, "no budget spent on refusals");
        // The randomized budget is still available afterwards.
        assert_eq!(st.decide(0, 0), Some(RingFault::Dropped));
    }

    #[test]
    fn bridge_budget_caps_drops_and_shrinks_to_a_prefix() {
        let mut p = FaultPlan::lossless();
        p.seed = 13;
        p.bridge_drop = 1.0;
        p.bridge_budget = 4;
        assert!(!p.is_lossless());
        assert!(p.bridge_faults());
        assert!(p.describe().contains("bridge=1.0000/bgt4"));
        let mut st = FaultState::new(p.clone());
        let drops = (0..100).filter(|_| st.decide_bridge().is_some()).count();
        assert_eq!(drops, 4);
        assert_eq!(st.stats().bridge_drops, 4);
        assert_eq!(st.remaining_bridge_budget(), 0);
        // Bridge drops are not part of injected() (ring-budget quantity).
        assert_eq!(st.stats().injected(), 0);

        // A smaller bridge budget keeps a prefix of the drop schedule.
        p.bridge_drop = 0.3;
        p.bridge_budget = 8;
        let mut full = FaultState::new(p.clone());
        let mut cut = FaultState::new(p.with_budget(2));
        let full_hits: Vec<u64> = (0..10_000u64)
            .filter(|_| full.decide_bridge().is_some())
            .collect();
        let cut_hits: Vec<u64> = (0..10_000u64)
            .filter(|_| cut.decide_bridge().is_some())
            .collect();
        assert!(cut_hits.len() <= 2);
        assert_eq!(&full_hits[..cut_hits.len()], &cut_hits[..]);
    }

    #[test]
    fn bridge_stream_is_decorrelated_from_ring_stream() {
        // Interleaving bridge draws must not perturb the ring schedule:
        // run the same ring traffic with and without bridge draws mixed
        // in and require identical ring fault sequences.
        let mut p = FaultPlan::random(21, 8, 2);
        p.bridge_drop = 0.5;
        p.bridge_budget = 1_000;
        let mut plain = FaultState::new(p.clone());
        let mut mixed = FaultState::new(p);
        for i in 0..50_000u64 {
            let (ring, node) = ((i % 2) as usize, (i % 8) as usize);
            if i % 3 == 0 {
                mixed.decide_bridge();
            }
            assert_eq!(plain.decide(ring, node), mixed.decide(ring, node));
        }
    }

    #[test]
    fn fault_state_snapshot_resumes_bridge_stream() {
        let mut p = FaultPlan::lossless();
        p.seed = 99;
        p.bridge_drop = 0.2;
        p.bridge_budget = 50;
        let mut live = FaultState::new(p.clone());
        for _ in 0..200 {
            live.decide_bridge();
        }
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&live);
        let mut resumed = FaultState::new(p);
        flexsnoop_engine::snap::restore_bytes(&mut resumed, &bytes).unwrap();
        assert_eq!(resumed.stats(), live.stats());
        assert_eq!(
            resumed.remaining_bridge_budget(),
            live.remaining_bridge_budget()
        );
        for _ in 0..2_000 {
            assert_eq!(live.decide_bridge(), resumed.decide_bridge());
        }
    }

    #[test]
    fn stall_departure_defers_and_counts() {
        let mut p = FaultPlan::lossless();
        p.stalls.push(StallWindow {
            node: 1,
            from: Cycle::new(100),
            until: Cycle::new(150),
        });
        let mut st = FaultState::new(p);
        assert_eq!(st.departure(1, Cycle::new(120)), Cycle::new(150));
        assert_eq!(st.departure(1, Cycle::new(99)), Cycle::new(99));
        assert_eq!(st.departure(0, Cycle::new(120)), Cycle::new(120));
        assert_eq!(st.stats().stall_hits, 1);
        assert_eq!(st.stats().stall_cycles, 30);
    }
}
