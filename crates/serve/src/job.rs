//! Job specifications, cache keys and serialized results.
//!
//! A [`JobSpec`] is one simulation described entirely by strings and
//! integers, so it can cross the service socket unchanged. Its [`JobKey`]
//! extends the simulator's configuration fingerprint (which deliberately
//! omits constructor data — see
//! [`Simulator::config_fingerprint`]) with the workload identity, the
//! *resolved* predictor configuration, the probe flag and the seed, so
//! that two keys are equal exactly when their runs produce identical
//! statistics. A finished run is packaged as a [`JobOutput`] and sealed
//! with the PR 7 snapshot envelope for the results cache.

use flexsnoop::sim::energy_model_for;
use flexsnoop::{Algorithm, PredictorSpec, ProbeReport, RunStats, Simulator};
use flexsnoop_engine::snap::{self, Fingerprint, SnapReader, SnapWriter, Snapshot};
use flexsnoop_metrics::Json;

use crate::names::{parse_algorithm, parse_predictor, parse_workload};

/// Version tag inside the sealed [`JobOutput`] payload; bump on layout
/// changes so stale persistent cache entries are rejected, not misread.
const JOB_OUTPUT_VERSION: u32 = 1;

/// One simulation run, described by names rather than types.
///
/// The sweep service restricts itself to *lossless* runs (no fault
/// plan): the configuration fingerprint deliberately excludes the fault
/// plan, so caching faulty runs under it would be unsound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload profile name (`flexsnoop list`), or `uniform`.
    pub workload: String,
    /// Algorithm name (e.g. `lazy`, `superset-agg`).
    pub algorithm: String,
    /// Predictor configuration name; empty means the algorithm default.
    pub predictor: String,
    /// Simulation seed.
    pub seed: u64,
    /// CMP nodes on the ring.
    pub nodes: usize,
    /// Accesses per core.
    pub accesses: u64,
    /// Attach observability counters ([`ProbeReport`]) to the result.
    pub probe: bool,
}

impl JobSpec {
    /// Parses the algorithm name.
    ///
    /// # Errors
    ///
    /// Propagates the name-parsing message.
    pub fn resolved_algorithm(&self) -> Result<Algorithm, String> {
        parse_algorithm(&self.algorithm)
    }

    /// The predictor configuration the run will actually use: the named
    /// one, or the algorithm's default when the name is empty.
    ///
    /// # Errors
    ///
    /// Propagates the name-parsing message.
    pub fn resolved_predictor(&self) -> Result<PredictorSpec, String> {
        Ok(match parse_predictor(&self.predictor)? {
            Some(spec) => spec,
            None => self.resolved_algorithm()?.default_predictor(),
        })
    }

    /// Builds the simulator this spec describes.
    ///
    /// # Errors
    ///
    /// Returns a message on unknown names or an invalid node count.
    pub fn build(&self) -> Result<Simulator, String> {
        let profile = parse_workload(&self.workload, self.nodes)?.with_accesses(self.accesses);
        let algorithm = self.resolved_algorithm()?;
        let predictor = parse_predictor(&self.predictor)?;
        let mut sim =
            Simulator::for_workload_on(&profile, algorithm, predictor, self.seed, self.nodes)?;
        if self.probe {
            sim.enable_probe();
        }
        Ok(sim)
    }

    /// Computes the results-cache key for this spec.
    ///
    /// Builds the simulator once to obtain its configuration fingerprint,
    /// then mixes in everything that fingerprint treats as constructor
    /// data: the workload name, the resolved (not the spelled) predictor
    /// configuration, the probe flag, and the seed. Resolving the
    /// predictor first means `--predictor supy2k` and an empty override on
    /// an algorithm whose default *is* `Supy2k` share a cache entry.
    ///
    /// # Errors
    ///
    /// Returns a message if the spec does not build.
    pub fn key(&self) -> Result<JobKey, String> {
        let sim = self.build()?;
        let mut f = Fingerprint::new();
        f.push_u64(sim.config_fingerprint());
        f.push_str(&self.workload);
        f.push_str(&self.resolved_predictor()?.to_string());
        f.push_u8(self.probe as u8);
        Ok(JobKey {
            config: f.finish(),
            seed: self.seed,
        })
    }
}

/// The results-cache key: extended configuration fingerprint plus seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey {
    /// [`Simulator::config_fingerprint`] extended with workload,
    /// resolved predictor and probe flag.
    pub config: u64,
    /// The simulation seed (kept out of `config` so persistent cache
    /// files group seed sweeps of one configuration together).
    pub seed: u64,
}

impl JobKey {
    /// Renders the key as the stable `{config:016x}-{seed:016x}` form
    /// used in cache file names and stream events.
    pub fn render(&self) -> String {
        format!("{:016x}-{:016x}", self.config, self.seed)
    }
}

/// A parameter-sweep request: the cross product of workloads, algorithms
/// and seeds under shared machine settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Workload names.
    pub workloads: Vec<String>,
    /// Algorithm names.
    pub algorithms: Vec<String>,
    /// Predictor override applied to every job (empty = per-algorithm
    /// default).
    pub predictor: String,
    /// Seeds.
    pub seeds: Vec<u64>,
    /// CMP nodes on the ring.
    pub nodes: usize,
    /// Accesses per core.
    pub accesses: u64,
    /// Attach observability counters to every job.
    pub probe: bool,
}

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            workloads: Vec::new(),
            algorithms: Vec::new(),
            predictor: String::new(),
            seeds: vec![42],
            nodes: 8,
            accesses: 4_000,
            probe: false,
        }
    }
}

impl SweepRequest {
    /// Expands the request into concrete jobs, workload-major (the same
    /// order as the benchmark matrix): workloads, then algorithms, then
    /// seeds.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        for workload in &self.workloads {
            for algorithm in &self.algorithms {
                for &seed in &self.seeds {
                    jobs.push(JobSpec {
                        workload: workload.clone(),
                        algorithm: algorithm.clone(),
                        predictor: self.predictor.clone(),
                        seed,
                        nodes: self.nodes,
                        accesses: self.accesses,
                        probe: self.probe,
                    });
                }
            }
        }
        jobs
    }

    /// Parses the wire form: `sweep key=value ...` with comma-separated
    /// list values, e.g.
    /// `sweep workloads=specjbb,specweb algorithms=lazy,eager seeds=1,2 accesses=200`.
    ///
    /// # Errors
    ///
    /// Returns a message on an unknown key, an unparsable number, or a
    /// request with no workloads/algorithms.
    pub fn parse_line(line: &str) -> Result<SweepRequest, String> {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("sweep") => {}
            other => return Err(format!("expected a `sweep` request, got {other:?}")),
        }
        let mut req = SweepRequest::default();
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed option {part:?}; expected key=value"))?;
            match key {
                "workloads" => req.workloads = split_names(value),
                "algorithms" => req.algorithms = split_names(value),
                "predictor" => req.predictor = value.to_string(),
                "seeds" => req.seeds = split_u64s("seeds", value)?,
                "nodes" => req.nodes = parse_num("nodes", value)? as usize,
                "accesses" => req.accesses = parse_num("accesses", value)?,
                "probe" => req.probe = value == "1" || value == "true",
                other => return Err(format!("unknown sweep option {other:?}")),
            }
        }
        if req.workloads.is_empty() {
            return Err("sweep needs workloads=...".to_string());
        }
        if req.algorithms.is_empty() {
            return Err("sweep needs algorithms=...".to_string());
        }
        if req.seeds.is_empty() {
            return Err("sweep needs at least one seed".to_string());
        }
        Ok(req)
    }

    /// Renders the wire form [`parse_line`](Self::parse_line) accepts;
    /// `parse_line(req.render_line())` round-trips.
    pub fn render_line(&self) -> String {
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        format!(
            "sweep workloads={} algorithms={} predictor={} seeds={} nodes={} accesses={} probe={}",
            self.workloads.join(","),
            self.algorithms.join(","),
            self.predictor,
            seeds.join(","),
            self.nodes,
            self.accesses,
            self.probe as u8,
        )
    }
}

fn split_names(value: &str) -> Vec<String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn split_u64s(key: &str, value: &str) -> Result<Vec<u64>, String> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse_num(key, s))
        .collect()
}

fn parse_num(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("{key}: expected a number, got {value:?}"))
}

/// A finished run: the statistics, plus the probe counters when the job
/// asked for them.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// The run statistics (bit-identical across queue backends, segment
    /// counts and executor widths — that is what makes caching sound).
    pub stats: RunStats,
    /// Observability counters, present when the job ran with `probe`.
    pub probe: Option<ProbeReport>,
}

impl JobOutput {
    /// Serializes into a sealed (checksummed, versioned) byte stream —
    /// the exact bytes the results cache stores and the stream replays.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u32(JOB_OUTPUT_VERSION);
        self.stats.save_into(&mut w);
        w.put_bool(self.probe.is_some());
        if let Some(probe) = &self.probe {
            probe.save_into(&mut w);
        }
        snap::seal(w.into_bytes())
    }

    /// Deserializes bytes produced by [`encode`](Self::encode). The
    /// energy *model* is configuration, not state, so the spec that
    /// produced the bytes must be supplied to rebuild it.
    ///
    /// # Errors
    ///
    /// Returns a message on a damaged envelope, a version mismatch, or a
    /// spec that does not resolve.
    pub fn decode(bytes: &[u8], spec: &JobSpec) -> Result<JobOutput, String> {
        let payload = snap::unseal(bytes).map_err(|e| format!("cache entry damaged: {e}"))?;
        let mut r = SnapReader::new(payload);
        let version = r.get_u32().map_err(|e| e.to_string())?;
        if version != JOB_OUTPUT_VERSION {
            return Err(format!(
                "cache entry version {version}, expected {JOB_OUTPUT_VERSION}"
            ));
        }
        let mut stats = RunStats::new(energy_model_for(&spec.resolved_predictor()?));
        stats.restore_from(&mut r).map_err(|e| e.to_string())?;
        let probe = if r.get_bool().map_err(|e| e.to_string())? {
            let mut report = ProbeReport::default();
            report.restore_from(&mut r).map_err(|e| e.to_string())?;
            Some(report)
        } else {
            None
        };
        Ok(JobOutput { stats, probe })
    }

    /// Renders the result as a deterministic single-line JSON object:
    /// no timestamps, no wall-clock quantities, no cache/source state —
    /// so a cached replay is byte-identical to the cold computation.
    pub fn to_json(&self) -> Json {
        let s = &self.stats;
        let mut pairs = vec![
            ("read_txns".to_string(), Json::from(s.read_txns)),
            ("write_txns".to_string(), Json::from(s.write_txns)),
            ("read_snoops".to_string(), Json::from(s.read_snoops)),
            ("write_snoops".to_string(), Json::from(s.write_snoops)),
            ("read_ring_hops".to_string(), Json::from(s.read_ring_hops)),
            ("write_ring_hops".to_string(), Json::from(s.write_ring_hops)),
            (
                "reads_cache_supplied".to_string(),
                Json::from(s.reads_cache_supplied),
            ),
            (
                "reads_from_memory".to_string(),
                Json::from(s.reads_from_memory),
            ),
            (
                "exec_cycles".to_string(),
                Json::from(s.exec_cycles.as_u64()),
            ),
            ("events".to_string(), Json::from(s.events)),
            (
                "snoops_per_read".to_string(),
                Json::from(s.snoops_per_read()),
            ),
            ("energy_nj".to_string(), Json::from(s.energy_nj())),
            ("quiet".to_string(), Json::from(s.robustness.is_quiet())),
        ];
        if let Some(p) = &self.probe {
            pairs.push((
                "probe".to_string(),
                Json::inline_obj([
                    ("forwards", Json::from(p.forwards)),
                    ("forward_then_snoop", Json::from(p.forward_then_snoop)),
                    ("snoop_then_forward", Json::from(p.snoop_then_forward)),
                    ("predictor_lookups", Json::from(p.predictor_lookups)),
                    ("predictor_positive", Json::from(p.predictor_positive)),
                ]),
            ));
        }
        Json::InlineObj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(algorithm: &str, seed: u64) -> JobSpec {
        JobSpec {
            workload: "specjbb".to_string(),
            algorithm: algorithm.to_string(),
            predictor: String::new(),
            seed,
            nodes: 8,
            accesses: 60,
            probe: false,
        }
    }

    #[test]
    fn sweep_request_round_trips_through_wire_form() {
        let req = SweepRequest {
            workloads: vec!["specjbb".into(), "specweb".into()],
            algorithms: vec!["lazy".into(), "eager".into()],
            predictor: "supy2k".into(),
            seeds: vec![1, 2, 3],
            nodes: 8,
            accesses: 200,
            probe: true,
        };
        assert_eq!(SweepRequest::parse_line(&req.render_line()).unwrap(), req);
        assert_eq!(
            req.expand().len(),
            12,
            "2 workloads × 2 algorithms × 3 seeds"
        );
    }

    #[test]
    fn sweep_request_rejects_malformed_lines() {
        assert!(SweepRequest::parse_line("run workloads=a").is_err());
        assert!(SweepRequest::parse_line("sweep wrkloads=a").is_err());
        assert!(SweepRequest::parse_line("sweep workloads=specjbb").is_err());
        assert!(
            SweepRequest::parse_line("sweep workloads=specjbb algorithms=lazy seeds=x").is_err()
        );
    }

    #[test]
    fn expansion_is_workload_major() {
        let req = SweepRequest {
            workloads: vec!["specjbb".into(), "specweb".into()],
            algorithms: vec!["lazy".into(), "eager".into()],
            seeds: vec![7],
            ..SweepRequest::default()
        };
        let order: Vec<(String, String)> = req
            .expand()
            .into_iter()
            .map(|j| (j.workload, j.algorithm))
            .collect();
        assert_eq!(order[0], ("specjbb".into(), "lazy".into()));
        assert_eq!(order[1], ("specjbb".into(), "eager".into()));
        assert_eq!(order[2], ("specweb".into(), "lazy".into()));
    }

    #[test]
    fn keys_separate_what_the_config_fingerprint_does_not() {
        let base = spec("lazy", 7).key().unwrap();
        assert_eq!(spec("lazy", 7).key().unwrap(), base, "keys are stable");
        assert_ne!(spec("lazy", 8).key().unwrap(), base, "seed");
        assert_ne!(spec("eager", 7).key().unwrap(), base, "algorithm");
        let mut other_workload = spec("lazy", 7);
        other_workload.workload = "specweb".to_string();
        assert_ne!(other_workload.key().unwrap(), base, "workload");
        let mut probed = spec("lazy", 7);
        probed.probe = true;
        assert_ne!(probed.key().unwrap(), base, "probe flag");
    }

    #[test]
    fn spelled_and_default_predictor_share_a_key() {
        // superset-agg's default is Supy2k; naming it explicitly must hit
        // the same cache entry.
        let implicit = spec("superset-agg", 7).key().unwrap();
        let mut explicit = spec("superset-agg", 7);
        explicit.predictor = "supy2k".to_string();
        assert_eq!(explicit.key().unwrap(), implicit);
    }

    #[test]
    fn job_output_round_trips_sealed() {
        let mut probed = spec("superset-agg", 3);
        probed.probe = true;
        let mut sim = probed.build().unwrap();
        sim.run_until(None);
        let output = JobOutput {
            stats: sim.finalize(),
            probe: sim.probe_report(),
        };
        assert!(output.probe.is_some());
        let bytes = output.encode();
        let mut back = JobOutput::decode(&bytes, &probed).unwrap();
        // peak_rss_bytes is volatile and deliberately not carried.
        if let (Some(b), Some(o)) = (&mut back.probe, &output.probe) {
            b.peak_rss_bytes = o.peak_rss_bytes;
        }
        assert_eq!(back, output);
        assert!(JobOutput::decode(&bytes[..bytes.len() - 3], &probed).is_err());
    }

    #[test]
    fn result_json_is_deterministic_and_single_line() {
        let s = spec("lazy", 3);
        let mut sim = s.build().unwrap();
        sim.run_until(None);
        let output = JobOutput {
            stats: sim.finalize(),
            probe: None,
        };
        let a = output.to_json().render();
        let b = JobOutput::decode(&output.encode(), &s)
            .unwrap()
            .to_json()
            .render();
        assert_eq!(a, b, "decode must reproduce the rendering exactly");
        assert!(!a.contains('\n'), "result lines must stay on one line");
    }
}
