//! The fingerprint-keyed results cache.
//!
//! Maps a [`JobKey`] to the sealed [`JobOutput`](crate::JobOutput) bytes
//! of a completed run. Always memory-backed; optionally persisted to a
//! directory with one file per key
//! (`job-{config:016x}-{seed:016x}.snap`), written atomically via a
//! temporary file so a crashed service never leaves a torn entry. Reads
//! validate the seal (magic, version, checksum) before trusting a file;
//! a damaged entry is treated as a miss and recomputed, never misread.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use flexsnoop_engine::snap;

use crate::job::JobKey;

/// Hit/miss/store counters, all monotonic over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered (from memory or a valid persistent file).
    pub hits: u64,
    /// Lookups that found nothing (or a damaged file).
    pub misses: u64,
    /// Results inserted.
    pub stores: u64,
}

/// A concurrent results cache keyed on [`JobKey`].
#[derive(Debug)]
pub struct ResultsCache {
    dir: Option<PathBuf>,
    map: Mutex<HashMap<JobKey, Arc<Vec<u8>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl ResultsCache {
    /// A memory-only cache (lives as long as the service).
    pub fn in_memory() -> ResultsCache {
        ResultsCache {
            dir: None,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        }
    }

    /// A cache persisted under `dir` (created if missing). Entries
    /// written by earlier service runs are visible immediately.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn persistent(dir: impl Into<PathBuf>) -> io::Result<ResultsCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultsCache {
            dir: Some(dir),
            ..ResultsCache::in_memory()
        })
    }

    /// The persistence directory, when there is one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Looks up a result, falling back to the persistence directory on a
    /// memory miss. Damaged files count as misses.
    pub fn get(&self, key: &JobKey) -> Option<Arc<Vec<u8>>> {
        if let Some(bytes) = lock_ignore_poison(&self.map).get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(bytes);
        }
        if let Some(dir) = &self.dir {
            if let Ok(bytes) = std::fs::read(dir.join(file_name(key))) {
                if snap::unseal(&bytes).is_ok() {
                    let bytes = Arc::new(bytes);
                    lock_ignore_poison(&self.map).insert(*key, bytes.clone());
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(bytes);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts a result, persisting it when a directory is configured.
    /// Persistence failures are swallowed: the memory entry still serves
    /// this process, and the next service run simply recomputes.
    pub fn put(&self, key: JobKey, bytes: Arc<Vec<u8>>) {
        if let Some(dir) = &self.dir {
            let tmp = dir.join(format!(".{}.tmp", file_name(&key)));
            if std::fs::write(&tmp, bytes.as_slice()).is_ok() {
                let _ = std::fs::rename(&tmp, dir.join(file_name(&key)));
            }
        }
        lock_ignore_poison(&self.map).insert(key, bytes);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        lock_ignore_poison(&self.map).len()
    }

    /// Whether the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

/// The persistent file name for a key.
fn file_name(key: &JobKey) -> String {
    format!("job-{}.snap", key.render())
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(config: u64, seed: u64) -> JobKey {
        JobKey { config, seed }
    }

    fn sealed(tag: u8) -> Arc<Vec<u8>> {
        Arc::new(snap::seal(vec![tag; 16]))
    }

    #[test]
    fn memory_cache_counts_hits_and_misses() {
        let cache = ResultsCache::in_memory();
        assert!(cache.get(&key(1, 2)).is_none());
        cache.put(key(1, 2), sealed(7));
        assert_eq!(cache.get(&key(1, 2)).unwrap(), sealed(7));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stores: 1
            }
        );
    }

    #[test]
    fn persistent_cache_survives_a_new_instance_and_rejects_damage() {
        let dir = std::env::temp_dir().join(format!("flexsnoop-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultsCache::persistent(&dir).unwrap();
            cache.put(key(3, 4), sealed(9));
        }
        let fresh = ResultsCache::persistent(&dir).unwrap();
        assert_eq!(
            fresh.get(&key(3, 4)).unwrap(),
            sealed(9),
            "reloaded from disk"
        );
        // Truncate the file: the entry must degrade to a miss.
        let path = dir.join(file_name(&key(3, 4)));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let damaged = ResultsCache::persistent(&dir).unwrap();
        assert!(damaged.get(&key(3, 4)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
