//! Name ↔ type mappings for workloads, algorithms and predictors.
//!
//! Job specifications cross process boundaries as plain strings (CLI
//! arguments, sweep-request lines on the service socket), so the mapping
//! from names to simulator types lives here, next to the service that
//! replays them. The CLI re-exports this module unchanged.

use flexsnoop::{Algorithm, DynPolicy, PredictorSpec};
use flexsnoop_workload::{profiles, WorkloadProfile};

/// The algorithm names the CLI accepts, with their parsed values.
pub fn algorithm_names() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("lazy", Algorithm::Lazy),
        ("eager", Algorithm::Eager),
        ("oracle", Algorithm::Oracle),
        ("subset", Algorithm::Subset),
        ("superset-con", Algorithm::SupersetCon),
        ("superset-agg", Algorithm::SupersetAgg),
        ("exact", Algorithm::Exact),
        (
            "superset-dyn",
            Algorithm::SupersetDyn(DynPolicy::PerformanceFirst),
        ),
    ]
}

/// The predictor configuration names of §5.2.
pub fn predictor_names() -> Vec<(&'static str, PredictorSpec)> {
    vec![
        ("none", PredictorSpec::None),
        ("sub512", PredictorSpec::SUB512),
        ("sub2k", PredictorSpec::SUB2K),
        ("sub8k", PredictorSpec::SUB8K),
        ("supy512", PredictorSpec::SUP_Y512),
        ("supy2k", PredictorSpec::SUP_Y2K),
        ("supn2k", PredictorSpec::SUP_N2K),
        ("exa512", PredictorSpec::EXA512),
        ("exa2k", PredictorSpec::EXA2K),
        ("exa8k", PredictorSpec::EXA8K),
        ("perfect", PredictorSpec::Perfect),
    ]
}

/// Parses an algorithm name.
///
/// # Errors
///
/// Lists the accepted names on failure.
pub fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    algorithm_names()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, a)| a)
        .ok_or_else(|| {
            let names: Vec<&str> = algorithm_names().iter().map(|(n, _)| *n).collect();
            format!("unknown algorithm {name:?}; one of: {}", names.join(", "))
        })
}

/// Parses a predictor configuration name (empty = `None`, meaning "use the
/// algorithm's default").
///
/// # Errors
///
/// Lists the accepted names on failure.
pub fn parse_predictor(name: &str) -> Result<Option<PredictorSpec>, String> {
    if name.is_empty() {
        return Ok(None);
    }
    predictor_names()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| Some(p))
        .ok_or_else(|| {
            let names: Vec<&str> = predictor_names().iter().map(|(n, _)| *n).collect();
            format!("unknown predictor {name:?}; one of: {}", names.join(", "))
        })
}

/// Parses a workload name against the built-in profiles (plus the
/// `uniform` microbenchmark and the `consolidated` hierarchical-topology
/// workload, both sized to `nodes` cores).
///
/// # Errors
///
/// Lists the accepted names on failure.
pub fn parse_workload(name: &str, nodes: usize) -> Result<WorkloadProfile, String> {
    if name == "uniform" {
        return Ok(profiles::uniform_microbench(nodes, 4_000));
    }
    if name == "consolidated" {
        return Ok(profiles::consolidated().with_cores(nodes));
    }
    profiles::all()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| {
            let mut names: Vec<String> = profiles::all().into_iter().map(|p| p.name).collect();
            names.push("uniform".to_string());
            names.push("consolidated".to_string());
            format!("unknown workload {name:?}; one of: {}", names.join(", "))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithm_names_parse() {
        for (name, alg) in algorithm_names() {
            assert_eq!(parse_algorithm(name).unwrap().to_string(), alg.to_string());
        }
        assert!(parse_algorithm("bogus").is_err());
    }

    #[test]
    fn all_predictor_names_parse() {
        for (name, _) in predictor_names() {
            assert!(parse_predictor(name).unwrap().is_some());
        }
        assert_eq!(parse_predictor("").unwrap(), None);
        assert!(parse_predictor("bogus").is_err());
    }

    #[test]
    fn all_workloads_parse() {
        for p in profiles::all() {
            assert_eq!(parse_workload(&p.name, 8).unwrap().name, p.name);
        }
        assert_eq!(parse_workload("uniform", 4).unwrap().cores, 4);
        let err = parse_workload("bogus", 8).unwrap_err();
        assert!(err.contains("specjbb"), "{err}");
    }

    #[test]
    fn every_algorithm_accepts_its_default_via_cli_names() {
        for (_, alg) in algorithm_names() {
            assert!(alg.accepts_predictor(&alg.default_predictor()));
        }
    }
}
