//! NDJSON protocol over a Unix domain socket.
//!
//! One request line in, a stream of newline-delimited JSON events out:
//!
//! ```text
//! client:  sweep workloads=specjbb algorithms=lazy,eager seeds=7 accesses=200
//! server:  {"event":"status","job":0,"key":"…","state":"queued"}
//! server:  {"event":"result","job":0,"key":"…","stats":{…}}
//! server:  …
//! server:  {"event":"done","jobs":2,"computed":2,"cached":0,"coalesced":0,"failed":0}
//! ```
//!
//! `status` lines report live scheduling and may interleave freely;
//! `result` lines carry only deterministic content (no timing, no
//! cache/source state) and are emitted in job order, so filtering a
//! stream to its `"event":"result"` lines yields bytes identical between
//! a cold sweep and its warm, fully cached replay. The other request
//! lines are `ping` (liveness) and `shutdown` (stops the accept loop).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use flexsnoop_metrics::Json;

use crate::job::{JobOutput, SweepRequest};
use crate::service::{JobEvent, SweepService};

/// What a server observed over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Sweep requests served.
    pub sweeps: u64,
    /// Jobs across all sweeps.
    pub jobs: u64,
    /// Clients that vanished mid-stream (broken pipe). Their jobs still
    /// ran to completion and populated the results cache.
    pub disconnects: u64,
}

/// Binds `path` and serves connections until a client sends `shutdown`.
/// A stale socket file from a dead server is replaced.
///
/// # Errors
///
/// Returns a message if the socket cannot be bound.
pub fn serve_blocking(path: &Path, service: &SweepService) -> Result<ServerSummary, String> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("bind {}: {e}", path.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("socket: {e}"))?;
    let stop = AtomicBool::new(false);
    let connections = AtomicU64::new(0);
    let sweeps = AtomicU64::new(0);
    let jobs = AtomicU64::new(0);
    let disconnects = AtomicU64::new(0);
    std::thread::scope(|scope| {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    connections.fetch_add(1, Ordering::Relaxed);
                    let (stop, sweeps, jobs, disconnects) = (&stop, &sweeps, &jobs, &disconnects);
                    scope.spawn(move || {
                        let _ = stream.set_nonblocking(false);
                        handle_connection(stream, service, stop, sweeps, jobs, disconnects);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    stop.store(true, Ordering::SeqCst);
                    let _ = std::fs::remove_file(path);
                    return Err(format!("accept: {e}"));
                }
            }
        }
        Ok(())
    })?;
    let _ = std::fs::remove_file(path);
    Ok(ServerSummary {
        connections: connections.load(Ordering::Relaxed),
        sweeps: sweeps.load(Ordering::Relaxed),
        jobs: jobs.load(Ordering::Relaxed),
        disconnects: disconnects.load(Ordering::Relaxed),
    })
}

fn handle_connection(
    stream: UnixStream,
    service: &SweepService,
    stop: &AtomicBool,
    sweeps: &AtomicU64,
    jobs: &AtomicU64,
    disconnects: &AtomicU64,
) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let line = line.trim();
    let reply = match line {
        "ping" => event_line(&[("event", Json::str("pong"))]),
        "shutdown" => {
            stop.store(true, Ordering::SeqCst);
            event_line(&[("event", Json::str("shutdown"))])
        }
        _ if line.starts_with("sweep") => {
            sweeps.fetch_add(1, Ordering::Relaxed);
            match stream_sweep(line, service, &mut writer) {
                Ok(n) => {
                    jobs.fetch_add(n, Ordering::Relaxed);
                    return; // stream_sweep wrote everything already
                }
                // The client went away mid-stream. Only this connection
                // dies; its jobs finish and land in the results cache.
                Err(StreamEnd::Disconnected) => {
                    disconnects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(StreamEnd::Request(message)) => event_line(&[
                    ("event", Json::str("error")),
                    ("message", Json::str(message)),
                ]),
            }
        }
        other => event_line(&[
            ("event", Json::str("error")),
            (
                "message",
                Json::str(format!(
                    "unknown request {other:?}; try sweep/ping/shutdown"
                )),
            ),
        ]),
    };
    let _ = writer.write_all(reply.as_bytes());
}

/// Why a sweep stream ended before its `done` line.
enum StreamEnd {
    /// The request was bad or a result failed to decode; the connection
    /// is still writable and gets an error event.
    Request(String),
    /// A write failed (broken pipe): the client is gone and nothing
    /// more can reach it.
    Disconnected,
}

impl From<String> for StreamEnd {
    fn from(message: String) -> StreamEnd {
        StreamEnd::Request(message)
    }
}

/// Writes one event line; a failed write means the client disconnected.
fn send(writer: &mut UnixStream, line: &str) -> Result<(), StreamEnd> {
    writer
        .write_all(line.as_bytes())
        .map_err(|_| StreamEnd::Disconnected)
}

/// Runs one sweep and streams its events; returns the job count.
fn stream_sweep(
    line: &str,
    service: &SweepService,
    writer: &mut UnixStream,
) -> Result<u64, StreamEnd> {
    let request = SweepRequest::parse_line(line)?;
    let submission = service.submit(&request)?;
    let total = submission.jobs();
    let (mut computed, mut cached, mut coalesced, mut failed) = (0u64, 0u64, 0u64, 0u64);
    // Result lines must come out in job order even though jobs finish in
    // any order: buffer early arrivals, flush the contiguous prefix.
    let mut pending: BTreeMap<usize, String> = BTreeMap::new();
    let mut next_result = 0usize;
    let mut resolved = 0usize;
    for event in submission.events.iter() {
        match event {
            JobEvent::Status { index, key, state } => {
                send(
                    writer,
                    &event_line(&[
                        ("event", Json::str("status")),
                        ("job", Json::from(index)),
                        ("key", Json::str(key.render())),
                        ("state", Json::str(state.as_str())),
                    ]),
                )?;
            }
            JobEvent::Result {
                index,
                key,
                bytes,
                source,
            } => {
                match source {
                    crate::service::ResultSource::Cache => cached += 1,
                    crate::service::ResultSource::Computed => computed += 1,
                    crate::service::ResultSource::Coalesced => coalesced += 1,
                }
                let output = JobOutput::decode(&bytes, &submission.specs[index])
                    .map_err(|e| StreamEnd::Request(format!("job {index}: {e}")))?;
                pending.insert(
                    index,
                    event_line(&[
                        ("event", Json::str("result")),
                        ("job", Json::from(index)),
                        ("key", Json::str(key.render())),
                        ("stats", output.to_json()),
                    ]),
                );
                resolved += 1;
            }
            JobEvent::Failed { index, key, error } => {
                failed += 1;
                send(
                    writer,
                    &event_line(&[
                        ("event", Json::str("error")),
                        ("job", Json::from(index)),
                        ("key", Json::str(key.render())),
                        ("message", Json::str(error)),
                    ]),
                )?;
                // No result line will come for this index.
                pending.insert(index, String::new());
                resolved += 1;
            }
        }
        while let Some(line) = pending.remove(&next_result) {
            send(writer, &line)?;
            next_result += 1;
        }
        if resolved == total {
            break;
        }
    }
    send(
        writer,
        &event_line(&[
            ("event", Json::str("done")),
            ("jobs", Json::from(total)),
            ("computed", Json::from(computed)),
            ("cached", Json::from(cached)),
            ("coalesced", Json::from(coalesced)),
            ("failed", Json::from(failed)),
        ]),
    )?;
    Ok(total as u64)
}

fn event_line(pairs: &[(&str, Json)]) -> String {
    let mut line = Json::inline_obj(pairs.iter().map(|(k, v)| (k.to_string(), v.clone()))).render();
    line.push('\n');
    line
}

/// Connects to a serving socket, sends one request line, and returns the
/// full NDJSON response (the stream is drained to EOF).
///
/// # Errors
///
/// Returns a message on connect/write/read failures.
pub fn request(path: &Path, line: &str) -> Result<String, String> {
    let mut stream =
        UnixStream::connect(path).map_err(|e| format!("connect {}: {e}", path.display()))?;
    stream
        .write_all(format!("{}\n", line.trim()).as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    Ok(response)
}

/// Sends `shutdown` to a serving socket.
///
/// # Errors
///
/// Propagates [`request`] failures.
pub fn request_shutdown(path: &Path) -> Result<(), String> {
    request(path, "shutdown").map(drop)
}

/// Filters an NDJSON stream down to its deterministic `result` lines —
/// the byte-comparable portion of a sweep response.
pub fn result_lines(stream: &str) -> String {
    stream
        .lines()
        .filter(|l| l.starts_with("{\"event\": \"result\""))
        .fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultsCache;
    use crate::service::{ServiceOptions, SweepService};

    fn socket_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("flexsnoop-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn sweep_over_the_socket_streams_ordered_results_and_caches() {
        let path = socket_path("e2e");
        let service = SweepService::new(
            ServiceOptions {
                threads: 2,
                slice_cycles: 2_000,
            },
            ResultsCache::in_memory(),
        );
        let summary = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_blocking(&path, &service));
            while !path.exists() {
                std::thread::yield_now();
            }
            assert!(request(&path, "ping").unwrap().contains("pong"));
            let line = "sweep workloads=specjbb algorithms=lazy,eager seeds=7 accesses=60";
            let cold = request(&path, line).unwrap();
            let warm = request(&path, line).unwrap();
            assert!(cold.contains("\"state\": \"running\""), "{cold}");
            assert!(cold.contains("\"computed\": 2"), "{cold}");
            assert!(warm.contains("\"cached\": 2"), "{warm}");
            assert!(warm.contains("\"state\": \"cached\""), "{warm}");
            let (cold_results, warm_results) = (result_lines(&cold), result_lines(&warm));
            assert_eq!(cold_results.lines().count(), 2);
            assert_eq!(
                cold_results, warm_results,
                "cached replay must be byte-identical"
            );
            // Result lines are in job order in both streams.
            let order: Vec<&str> = cold_results
                .lines()
                .map(|l| {
                    l.split("\"job\": ")
                        .nth(1)
                        .unwrap()
                        .split(',')
                        .next()
                        .unwrap()
                })
                .collect();
            assert_eq!(order, ["0", "1"]);
            assert!(request(&path, "bogus").unwrap().contains("unknown request"));
            request_shutdown(&path).unwrap();
            server.join().unwrap().unwrap()
        });
        assert_eq!(summary.sweeps, 2);
        assert_eq!(summary.jobs, 4);
        assert!(!path.exists(), "socket file cleaned up");
    }

    #[test]
    fn client_disconnect_mid_stream_fails_only_that_connection() {
        let path = socket_path("drop");
        let service = SweepService::new(
            ServiceOptions {
                threads: 1,
                slice_cycles: 2_000,
            },
            ResultsCache::in_memory(),
        );
        let summary = std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_blocking(&path, &service));
            while !path.exists() {
                std::thread::yield_now();
            }
            // A sweep wide enough (8 jobs, 1 worker) that results are
            // still streaming when the client vanishes: read one byte to
            // be sure the stream started, then drop the socket.
            {
                let mut s = UnixStream::connect(&path).unwrap();
                s.write_all(
                    b"sweep workloads=specjbb algorithms=lazy,eager seeds=1,2,3,4 accesses=200\n",
                )
                .unwrap();
                let mut one = [0u8; 1];
                s.read_exact(&mut one).unwrap();
            }
            // The abandoned sweep's jobs still run and fill the cache;
            // a second submission on a fresh connection completes.
            let line = "sweep workloads=specjbb algorithms=lazy,eager seeds=1,2,3,4 accesses=200";
            let out = request(&path, line).unwrap();
            assert!(out.contains("\"event\": \"done\""), "{out}");
            assert_eq!(result_lines(&out).lines().count(), 8, "{out}");
            request_shutdown(&path).unwrap();
            server.join().unwrap().unwrap()
        });
        assert_eq!(summary.disconnects, 1, "{summary:?}");
        assert_eq!(summary.sweeps, 2);
        // Only the completed sweep's jobs are counted as served.
        assert_eq!(summary.jobs, 8);
    }

    #[test]
    fn malformed_sweeps_report_errors_not_hangs() {
        let path = socket_path("err");
        let service = SweepService::new(
            ServiceOptions {
                threads: 1,
                slice_cycles: 2_000,
            },
            ResultsCache::in_memory(),
        );
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_blocking(&path, &service));
            while !path.exists() {
                std::thread::yield_now();
            }
            let out = request(&path, "sweep workloads=specjbb algorithms=bogus seeds=1").unwrap();
            assert!(out.contains("unknown algorithm"), "{out}");
            request_shutdown(&path).unwrap();
            server.join().unwrap().unwrap();
        });
    }
}
