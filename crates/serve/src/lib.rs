//! Parameter-sweep service for the flexsnoop simulator.
//!
//! `flexsnoop serve` turns the batch simulator into a long-lived
//! service: clients submit sweep requests (a config matrix that expands
//! into jobs), a scheduler runs them on a persistent worker pool, and
//! results stream back as newline-delimited JSON. Three layers keep
//! repeated work off the simulator (DESIGN.md §11):
//!
//! * a **results cache** keyed on the simulator's configuration
//!   fingerprint extended with workload, resolved predictor, probe flag
//!   and seed — resubmitting a sweep re-runs nothing;
//! * **in-flight dedup** — concurrent submissions of an equal key
//!   coalesce onto one execution;
//! * **checkpointed preemption** — running jobs can be parked as PR 7
//!   snapshots and later resumed bit-identically.
//!
//! Everything is built from `std` (threads, channels, Unix sockets);
//! the crate adds no dependencies beyond the workspace.
//!
//! # Quickstart
//!
//! Submit a two-job sweep in-process, read the streamed results, then
//! resubmit and watch the cache answer instead of the simulator:
//!
//! ```
//! use flexsnoop_serve::{
//!     JobOutput, ResultsCache, ResultSource, ServiceOptions, SweepRequest, SweepService,
//! };
//!
//! let service = SweepService::new(ServiceOptions::default(), ResultsCache::in_memory());
//! let request = SweepRequest::parse_line(
//!     "sweep workloads=specjbb algorithms=lazy,eager seeds=7 accesses=60",
//! )?;
//!
//! let submission = service.submit(&request)?;
//! let specs = submission.specs.clone();
//! let cold = submission.collect();
//! assert_eq!(cold.results.len(), 2);
//! let outputs = cold.outputs(&specs)?;
//! assert!(outputs[0].stats.read_txns > 0);
//!
//! // Same sweep again: zero simulator runs, byte-identical results.
//! let warm = service.submit(&request)?.collect();
//! assert_eq!(service.stats().executed, 2, "the warm pass executed nothing new");
//! for (c, w) in cold.results.iter().zip(&warm.results) {
//!     let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
//!     assert_eq!(c.bytes, w.bytes);
//!     assert_eq!(w.source, ResultSource::Cache);
//! }
//! # Ok::<(), String>(())
//! ```
//!
//! The same service speaks NDJSON over a Unix socket via
//! [`server::serve_blocking`] / [`server::request`]; the `flexsnoop
//! serve` and `flexsnoop submit` subcommands are thin wrappers over
//! those.

#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod names;
pub mod server;
pub mod service;

pub use cache::{CacheStats, ResultsCache};
pub use job::{JobKey, JobOutput, JobSpec, SweepRequest};
pub use server::{request, request_shutdown, result_lines, serve_blocking, ServerSummary};
pub use service::{
    JobEvent, JobResult, JobState, ResultSource, ServiceOptions, ServiceStats, Submission,
    SubmissionOutcome, SweepService,
};
