//! The sweep scheduler: queue → dedup → executor → cache.
//!
//! [`SweepService`] expands a [`SweepRequest`] into jobs and runs them on
//! a persistent worker pool ([`ExecutorService`]). Three mechanisms keep
//! repeated work off the simulator:
//!
//! * **Results cache** — a finished job's sealed bytes are stored under
//!   its [`JobKey`]; an equal key on any later submission is answered
//!   without running the simulator at all.
//! * **In-flight dedup** — concurrent submissions of an equal key
//!   *coalesce*: one execution, every waiter gets the bytes.
//! * **Checkpointed preemption** — [`preempt`](SweepService::preempt)
//!   makes running jobs park a [snapshot](flexsnoop::Simulator::save_snapshot)
//!   between event slices; [`resume_preempted`](SweepService::resume_preempted)
//!   restores and continues them bit-identically (the PR 7 guarantee).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use flexsnoop_engine::{executor, CancelToken, Cycle, ExecutorService};

use crate::cache::{CacheStats, ResultsCache};
use crate::job::{JobKey, JobOutput, JobSpec, SweepRequest};

/// Tuning knobs for a [`SweepService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceOptions {
    /// Worker threads (0 = the machine default, same policy as the
    /// batch executor).
    pub threads: usize,
    /// Cycles simulated between preemption checks; smaller slices
    /// preempt faster but check the flag more often.
    pub slice_cycles: u64,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            threads: 0,
            slice_cycles: 25_000,
        }
    }
}

/// Where a job's lifecycle currently stands (the state machine of
/// DESIGN.md §11): `Queued → Running → Done/Failed`, with `Cached`
/// short-circuiting straight from `Queued`, and preemption looping
/// `Running → Queued`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, not yet on a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Answered from the results cache without running.
    Cached,
    /// Computed to completion.
    Done,
    /// Rejected or crashed; carries no result.
    Failed,
}

impl JobState {
    /// The lowercase wire name used in stream events.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Cached => "cached",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// How a job's result bytes were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultSource {
    /// Served from the results cache.
    Cache,
    /// Computed by this job's own execution.
    Computed,
    /// Computed once by an equal in-flight job this one coalesced onto.
    Coalesced,
}

impl ResultSource {
    /// The lowercase name used in summaries.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResultSource::Cache => "cache",
            ResultSource::Computed => "computed",
            ResultSource::Coalesced => "coalesced",
        }
    }
}

/// One event on a submission's stream.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A lifecycle transition.
    Status {
        /// Index into the submission's job list.
        index: usize,
        /// The job's cache key.
        key: JobKey,
        /// The state entered.
        state: JobState,
    },
    /// The job's sealed result bytes (exactly what the cache stores).
    Result {
        /// Index into the submission's job list.
        index: usize,
        /// The job's cache key.
        key: JobKey,
        /// Sealed [`JobOutput`] bytes.
        bytes: Arc<Vec<u8>>,
        /// How the bytes were obtained.
        source: ResultSource,
    },
    /// The job failed; no result will follow.
    Failed {
        /// Index into the submission's job list.
        index: usize,
        /// The job's cache key.
        key: JobKey,
        /// What went wrong.
        error: String,
    },
}

/// A successfully completed job from [`Submission::collect`].
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's cache key.
    pub key: JobKey,
    /// Sealed [`JobOutput`] bytes.
    pub bytes: Arc<Vec<u8>>,
    /// How the bytes were obtained.
    pub source: ResultSource,
}

/// An accepted sweep: the expanded jobs, their keys, and the live event
/// stream.
#[derive(Debug)]
pub struct Submission {
    /// The expanded jobs, in submission order.
    pub specs: Vec<JobSpec>,
    /// Cache keys, parallel to `specs`.
    pub keys: Vec<JobKey>,
    /// Lifecycle and result events; closes when the last job resolves.
    pub events: Receiver<JobEvent>,
}

impl Submission {
    /// Number of jobs in the sweep.
    pub fn jobs(&self) -> usize {
        self.specs.len()
    }

    /// Blocks until every job has a result (or failed) and returns them
    /// in submission order. Jobs still unresolved when the service shuts
    /// down come back as errors.
    pub fn collect(self) -> SubmissionOutcome {
        let mut slots: Vec<Option<Result<JobResult, String>>> = vec![None; self.specs.len()];
        let mut open = self.specs.len();
        while open > 0 {
            let Ok(event) = self.events.recv() else {
                break;
            };
            match event {
                JobEvent::Status { .. } => {}
                JobEvent::Result {
                    index,
                    key,
                    bytes,
                    source,
                } => {
                    if slots[index].is_none() {
                        slots[index] = Some(Ok(JobResult { key, bytes, source }));
                        open -= 1;
                    }
                }
                JobEvent::Failed { index, error, .. } => {
                    if slots[index].is_none() {
                        slots[index] = Some(Err(error));
                        open -= 1;
                    }
                }
            }
        }
        SubmissionOutcome {
            results: slots
                .into_iter()
                .map(|s| s.unwrap_or_else(|| Err("service shut down before the job ran".into())))
                .collect(),
        }
    }
}

/// Everything [`Submission::collect`] gathered.
#[derive(Debug)]
pub struct SubmissionOutcome {
    /// Per-job results in submission order.
    pub results: Vec<Result<JobResult, String>>,
}

impl SubmissionOutcome {
    /// Decodes every successful result against its spec.
    ///
    /// # Errors
    ///
    /// Propagates the first job failure or decode error.
    pub fn outputs(&self, specs: &[JobSpec]) -> Result<Vec<JobOutput>, String> {
        self.results
            .iter()
            .zip(specs)
            .map(|(r, spec)| {
                let r = r.as_ref().map_err(String::clone)?;
                JobOutput::decode(&r.bytes, spec)
            })
            .collect()
    }
}

/// Scheduler counters (see also [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs the simulator actually ran to completion.
    pub executed: u64,
    /// Submissions answered by an in-flight execution of an equal key.
    pub coalesced: u64,
    /// Preemptions that parked a checkpoint (or an unstarted job).
    pub preempted: u64,
    /// Parked jobs resumed from a checkpoint.
    pub resumed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Results-cache counters.
    pub cache: CacheStats,
}

/// One waiter on a job's completion.
#[derive(Debug, Clone)]
struct Waiter {
    index: usize,
    coalesced: bool,
    tx: Sender<JobEvent>,
}

#[derive(Debug, Default)]
struct Gate {
    closed: Mutex<bool>,
    opened: Condvar,
}

impl Gate {
    fn wait_open(&self) {
        let mut closed = lock(&self.closed);
        while *closed {
            closed = self
                .opened
                .wait(closed)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn set(&self, hold: bool) {
        *lock(&self.closed) = hold;
        if !hold {
            self.opened.notify_all();
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    in_flight: Mutex<HashMap<JobKey, Vec<Waiter>>>,
    checkpoints: Mutex<HashMap<JobKey, Vec<u8>>>,
    parked: Mutex<Vec<(JobKey, JobSpec)>>,
    gate: Gate,
    cancel: CancelToken,
    executed: AtomicU64,
    coalesced: AtomicU64,
    preempted: AtomicU64,
    resumed: AtomicU64,
    failed: AtomicU64,
    slice_cycles: u64,
}

/// The sweep scheduler; see the [module docs](self).
#[derive(Debug)]
pub struct SweepService {
    pool: ExecutorService,
    cache: Arc<ResultsCache>,
    inner: Arc<Inner>,
}

impl SweepService {
    /// Starts the worker pool over `cache`.
    pub fn new(options: ServiceOptions, cache: ResultsCache) -> SweepService {
        let threads = if options.threads == 0 {
            executor::default_threads()
        } else {
            options.threads
        };
        SweepService {
            pool: ExecutorService::start(threads),
            cache: Arc::new(cache),
            inner: Arc::new(Inner {
                slice_cycles: options.slice_cycles.max(1),
                ..Inner::default()
            }),
        }
    }

    /// The results cache the service answers from.
    pub fn cache(&self) -> &ResultsCache {
        &self.cache
    }

    /// Expands and enqueues a sweep. Every job is validated (names,
    /// node divisibility) before anything is scheduled, so a bad request
    /// schedules nothing.
    ///
    /// # Errors
    ///
    /// Returns the first validation message.
    pub fn submit(&self, request: &SweepRequest) -> Result<Submission, String> {
        let specs = request.expand();
        if specs.is_empty() {
            return Err("sweep expands to zero jobs".to_string());
        }
        let keys: Vec<JobKey> = specs.iter().map(JobSpec::key).collect::<Result<_, _>>()?;
        let (tx, rx) = channel();
        for (index, (spec, key)) in specs.iter().zip(&keys).enumerate() {
            let _ = tx.send(JobEvent::Status {
                index,
                key: *key,
                state: JobState::Queued,
            });
            // The in-flight map is checked under its lock so a job
            // completing between the cache probe and the insert cannot
            // be missed: runners publish to the cache *before* clearing
            // their in-flight entry.
            let mut map = lock(&self.inner.in_flight);
            if let Some(waiters) = map.get_mut(key) {
                waiters.push(Waiter {
                    index,
                    coalesced: true,
                    tx: tx.clone(),
                });
                self.inner.coalesced.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if let Some(bytes) = self.cache.get(key) {
                drop(map);
                let _ = tx.send(JobEvent::Status {
                    index,
                    key: *key,
                    state: JobState::Cached,
                });
                let _ = tx.send(JobEvent::Result {
                    index,
                    key: *key,
                    bytes,
                    source: ResultSource::Cache,
                });
                continue;
            }
            map.insert(
                *key,
                vec![Waiter {
                    index,
                    coalesced: false,
                    tx: tx.clone(),
                }],
            );
            drop(map);
            self.schedule(*key, spec.clone());
        }
        Ok(Submission {
            specs,
            keys,
            events: rx,
        })
    }

    /// Closes the admission gate: queued jobs wait before touching the
    /// simulator. Running jobs are unaffected (use
    /// [`preempt`](Self::preempt) for those).
    pub fn hold(&self) {
        self.inner.gate.set(true);
    }

    /// Reopens the admission gate.
    pub fn release(&self) {
        self.inner.gate.set(false);
    }

    /// Asks every running job to park a checkpoint at its next slice
    /// boundary (and unstarted jobs to park immediately). Parked jobs
    /// stay parked — waiters keep waiting — until
    /// [`resume_preempted`](Self::resume_preempted).
    pub fn preempt(&self) {
        self.inner.cancel.cancel();
    }

    /// Jobs currently parked by preemption.
    pub fn parked_jobs(&self) -> usize {
        lock(&self.inner.parked).len()
    }

    /// Clears the preemption flag and reschedules every parked job;
    /// checkpointed ones restore and continue bit-identically. Returns
    /// how many were rescheduled.
    pub fn resume_preempted(&self) -> usize {
        self.inner.cancel.reset();
        let parked: Vec<(JobKey, JobSpec)> = lock(&self.inner.parked).drain(..).collect();
        let count = parked.len();
        for (key, spec) in parked {
            self.schedule(key, spec);
        }
        count
    }

    /// The scheduler counters so far.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            executed: self.inner.executed.load(Ordering::Relaxed),
            coalesced: self.inner.coalesced.load(Ordering::Relaxed),
            preempted: self.inner.preempted.load(Ordering::Relaxed),
            resumed: self.inner.resumed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    fn schedule(&self, key: JobKey, spec: JobSpec) {
        let inner = Arc::clone(&self.inner);
        let cache = Arc::clone(&self.cache);
        self.pool.spawn(move || run_job(&inner, &cache, key, spec));
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        // The pool drains queued tasks on drop; a held gate would make
        // that wait forever.
        self.release();
    }
}

/// Executes one job on a worker: gate, preemption slices, finalize,
/// publish, notify. Runs with the in-flight entry for `key` owned by
/// this invocation.
fn run_job(inner: &Inner, cache: &ResultsCache, key: JobKey, spec: JobSpec) {
    inner.gate.wait_open();
    if inner.cancel.is_cancelled() {
        park(inner, key, spec, None);
        return;
    }
    notify_waiters(inner, key, JobState::Running);
    let mut sim = match spec.build() {
        Ok(sim) => sim,
        Err(e) => return fail(inner, key, e),
    };
    if let Some(snapshot) = lock(&inner.checkpoints).remove(&key) {
        if let Err(e) = sim.restore_snapshot(&snapshot) {
            return fail(inner, key, format!("checkpoint restore: {e}"));
        }
        inner.resumed.fetch_add(1, Ordering::Relaxed);
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut stop = inner.slice_cycles;
        loop {
            let reached = sim.run_until(Some(Cycle::new(stop)));
            if sim.pending_events() == 0 {
                break;
            }
            if inner.cancel.is_cancelled() {
                return None;
            }
            stop = reached.as_u64() + inner.slice_cycles;
        }
        let stats = sim.finalize();
        let probe = sim.probe_report();
        Some((stats, probe))
    }));
    match outcome {
        Err(_) => fail(inner, key, "job panicked in the simulator".to_string()),
        Ok(None) => {
            // Preempted mid-run: park a checkpoint and hand the job back
            // to the queue (a later resume parks a fresh one in turn).
            let snapshot = sim.save_snapshot();
            park(inner, key, spec, Some(snapshot));
        }
        Ok(Some((stats, probe))) => {
            if let Err(e) = sim.validate_coherence() {
                return fail(inner, key, format!("coherence check: {e}"));
            }
            let bytes = Arc::new(JobOutput { stats, probe }.encode());
            // Publish before clearing in-flight (see `submit`).
            cache.put(key, Arc::clone(&bytes));
            inner.executed.fetch_add(1, Ordering::Relaxed);
            let waiters = lock(&inner.in_flight).remove(&key).unwrap_or_default();
            for w in waiters {
                let _ = w.tx.send(JobEvent::Status {
                    index: w.index,
                    key,
                    state: JobState::Done,
                });
                let _ = w.tx.send(JobEvent::Result {
                    index: w.index,
                    key,
                    bytes: Arc::clone(&bytes),
                    source: if w.coalesced {
                        ResultSource::Coalesced
                    } else {
                        ResultSource::Computed
                    },
                });
            }
        }
    }
}

fn park(inner: &Inner, key: JobKey, spec: JobSpec, snapshot: Option<Vec<u8>>) {
    if let Some(snapshot) = snapshot {
        lock(&inner.checkpoints).insert(key, snapshot);
    }
    lock(&inner.parked).push((key, spec));
    inner.preempted.fetch_add(1, Ordering::Relaxed);
    notify_waiters(inner, key, JobState::Queued);
}

fn fail(inner: &Inner, key: JobKey, error: String) {
    inner.failed.fetch_add(1, Ordering::Relaxed);
    let waiters = lock(&inner.in_flight).remove(&key).unwrap_or_default();
    for w in waiters {
        let _ = w.tx.send(JobEvent::Status {
            index: w.index,
            key,
            state: JobState::Failed,
        });
        let _ = w.tx.send(JobEvent::Failed {
            index: w.index,
            key,
            error: error.clone(),
        });
    }
}

fn notify_waiters(inner: &Inner, key: JobKey, state: JobState) {
    let waiters: Vec<Waiter> = lock(&inner.in_flight)
        .get(&key)
        .map(|w| w.to_vec())
        .unwrap_or_default();
    for w in waiters {
        let _ = w.tx.send(JobEvent::Status {
            index: w.index,
            key,
            state,
        });
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(algorithms: &[&str], seeds: &[u64], accesses: u64) -> SweepRequest {
        SweepRequest {
            workloads: vec!["specjbb".to_string()],
            algorithms: algorithms.iter().map(|s| s.to_string()).collect(),
            seeds: seeds.to_vec(),
            accesses,
            ..SweepRequest::default()
        }
    }

    fn service() -> SweepService {
        SweepService::new(
            ServiceOptions {
                threads: 2,
                slice_cycles: 2_000,
            },
            ResultsCache::in_memory(),
        )
    }

    #[test]
    fn cold_then_warm_submission_reuses_bytes_exactly() {
        let service = service();
        let req = request(&["lazy", "eager"], &[7], 60);
        let cold = service.submit(&req).unwrap().collect();
        assert_eq!(service.stats().executed, 2);
        let warm = service.submit(&req).unwrap().collect();
        assert_eq!(service.stats().executed, 2, "warm run re-ran nothing");
        for (c, w) in cold.results.iter().zip(&warm.results) {
            let (c, w) = (c.as_ref().unwrap(), w.as_ref().unwrap());
            assert_eq!(c.bytes, w.bytes, "cached bytes are the computed bytes");
            assert_eq!(c.source, ResultSource::Computed);
            assert_eq!(w.source, ResultSource::Cache);
        }
    }

    #[test]
    fn duplicate_in_flight_submissions_coalesce() {
        let service = service();
        let req = request(&["lazy"], &[3], 60);
        service.hold();
        let first = service.submit(&req).unwrap();
        let second = service.submit(&req).unwrap();
        assert_eq!(service.stats().coalesced, 1);
        service.release();
        let (a, b) = (first.collect(), second.collect());
        assert_eq!(service.stats().executed, 1, "one execution served both");
        let (a, b) = (
            a.results[0].as_ref().unwrap(),
            b.results[0].as_ref().unwrap(),
        );
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.source, ResultSource::Computed);
        assert_eq!(b.source, ResultSource::Coalesced);
    }

    #[test]
    fn duplicates_inside_one_sweep_coalesce_too() {
        let service = service();
        // Two equal seeds expand to two jobs with equal keys.
        let req = request(&["lazy"], &[5, 5], 60);
        service.hold();
        let sub = service.submit(&req).unwrap();
        assert_eq!(sub.keys[0], sub.keys[1]);
        service.release();
        let out = sub.collect();
        assert_eq!(service.stats().executed, 1);
        assert_eq!(service.stats().coalesced, 1);
        assert_eq!(
            out.results[0].as_ref().unwrap().bytes,
            out.results[1].as_ref().unwrap().bytes
        );
    }

    #[test]
    fn unstarted_jobs_park_on_preempt_and_resume() {
        let service = service();
        service.preempt();
        let sub = service.submit(&request(&["lazy"], &[9], 60)).unwrap();
        while service.parked_jobs() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(service.stats().executed, 0, "nothing ran while preempted");
        assert_eq!(service.resume_preempted(), 1);
        assert!(sub.collect().results[0].is_ok());
        assert_eq!(service.stats().executed, 1);
    }

    #[test]
    fn preempted_jobs_resume_to_identical_results() {
        let req = request(&["superset-agg"], &[9], 800);
        // Uninterrupted baseline.
        let baseline = {
            let service = service();
            let sub = service.submit(&req).unwrap();
            sub.collect().results[0].as_ref().unwrap().bytes.clone()
        };
        // Tiny slices so a preempt lands mid-run with high probability.
        let service = SweepService::new(
            ServiceOptions {
                threads: 1,
                slice_cycles: 500,
            },
            ResultsCache::in_memory(),
        );
        let sub = service.submit(&req).unwrap();
        let mut preempted = false;
        let mut bytes = None;
        for event in sub.events.iter() {
            match event {
                JobEvent::Status {
                    state: JobState::Running,
                    ..
                } if !preempted => {
                    preempted = true;
                    service.preempt();
                    // Wait for the park (or for the run to win the race).
                    while service.parked_jobs() == 0 && service.stats().executed == 0 {
                        std::thread::yield_now();
                    }
                    service.resume_preempted();
                }
                JobEvent::Result { bytes: b, .. } => {
                    bytes = Some(b);
                    break;
                }
                JobEvent::Failed { error, .. } => panic!("job failed: {error}"),
                _ => {}
            }
        }
        assert_eq!(
            bytes.expect("job produced no result"),
            baseline,
            "resume from checkpoint diverged from the uninterrupted run"
        );
    }

    #[test]
    fn invalid_requests_schedule_nothing() {
        let service = service();
        let err = service
            .submit(&request(&["lazy", "bogus"], &[1], 60))
            .unwrap_err();
        assert!(err.contains("unknown algorithm"), "{err}");
        assert_eq!(service.stats().executed, 0);
        assert_eq!(service.cache().len(), 0);
    }

    #[test]
    fn failures_reach_every_waiter() {
        let service = service();
        // specjbb has 16 cores; 5 nodes does not divide it. Expansion
        // validates at submit time, so this surfaces as a submit error.
        let mut req = request(&["lazy"], &[1], 60);
        req.nodes = 5;
        assert!(service.submit(&req).is_err());
    }
}
