//! Scenario tests for the directory protocol.

use flexsnoop::MachineConfig;
use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter};
use flexsnoop_engine::{Cycles, Snapshot};
use flexsnoop_mem::{CmpId, CoherState, LineAddr};
use flexsnoop_workload::{AccessStream, MemAccess};

use crate::sim::{DirSimulator, DirStats};

struct Script(Vec<MemAccess>, usize);

impl Snapshot for Script {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.1);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.1 = r.get_usize()?;
        Ok(())
    }
}

impl AccessStream for Script {
    fn next_access(&mut self) -> Option<MemAccess> {
        let a = self.0.get(self.1).copied();
        if a.is_some() {
            self.1 += 1;
        }
        a
    }
}

const RD: bool = false;
const WR: bool = true;

fn run(script: &[&[(u64, bool)]]) -> (DirSimulator, DirStats) {
    let machine = MachineConfig::isca2006(1);
    let mut streams: Vec<Box<dyn AccessStream + Send>> = Vec::new();
    let mut limit = 1;
    for c in 0..machine.total_cores() {
        let accesses: Vec<MemAccess> = script
            .get(c)
            .map(|s| {
                s.iter()
                    .map(|&(line, write)| MemAccess {
                        line: LineAddr(line),
                        write,
                        think: Cycles(10),
                    })
                    .collect()
            })
            .unwrap_or_default();
        limit = limit.max(accesses.len() as u64);
        streams.push(Box::new(Script(accesses, 0)));
    }
    let mut sim = DirSimulator::new(machine, streams, limit).expect("valid");
    let stats = sim.run();
    sim.validate_coherence().expect("coherent");
    (sim, stats)
}

#[test]
fn cold_read_is_two_hop() {
    let (sim, stats) = run(&[&[(100, RD)]]);
    assert_eq!(stats.read_txns, 1);
    assert_eq!(stats.reads_two_hop, 1);
    assert_eq!(stats.reads_three_hop, 0);
    assert_eq!(stats.mem_reads, 1);
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::Sl);
}

#[test]
fn dirty_read_is_three_hop_with_writeback() {
    // Core 0 dirties the line; core 2 reads it.
    let (sim, stats) = run(&[&[(100, WR)], &[], &[(0, RD), (0, RD), (100, RD)]]);
    assert_eq!(stats.reads_three_hop, 1);
    assert!(stats.mem_writes >= 1, "owner must write back");
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::Sl);
    assert_eq!(sim.line_state(CmpId(2), 0, LineAddr(100)), CoherState::Sl);
}

#[test]
fn write_invalidates_all_sharers() {
    let (sim, stats) = run(&[
        &[(100, RD)],
        &[(0, RD), (100, RD)],
        &[(8, RD), (8, RD), (8, RD), (100, WR)],
    ]);
    assert!(stats.invalidations >= 2, "both sharers invalidated");
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::I);
    assert_eq!(sim.line_state(CmpId(1), 0, LineAddr(100)), CoherState::I);
    assert_eq!(sim.line_state(CmpId(2), 0, LineAddr(100)), CoherState::D);
}

#[test]
fn ownership_transfers_on_write_to_owned_line() {
    let (sim, _) = run(&[&[(100, WR)], &[(0, RD), (0, RD), (100, WR)]]);
    assert_eq!(sim.line_state(CmpId(0), 0, LineAddr(100)), CoherState::I);
    assert_eq!(sim.line_state(CmpId(1), 0, LineAddr(100)), CoherState::D);
}

#[test]
fn silent_rewrite_of_owned_line() {
    let (_, stats) = run(&[&[(100, WR), (100, WR), (100, WR)]]);
    assert_eq!(stats.write_txns, 1, "only the first write reaches the home");
}

#[test]
fn same_line_write_conflicts_serialize() {
    let script: Vec<&[(u64, bool)]> = vec![&[(100, WR)]; 8];
    let (sim, stats) = run(&script);
    assert_eq!(stats.write_txns, 8);
    assert!(stats.home_conflicts > 0);
    let owners = (0..8)
        .filter(|&n| sim.line_state(CmpId(n), 0, LineAddr(100)) == CoherState::D)
        .count();
    assert_eq!(owners, 1, "exactly one final owner");
}

#[test]
fn local_peer_supply_avoids_the_home() {
    let machine = MachineConfig::isca2006(2);
    let mut streams: Vec<Box<dyn AccessStream + Send>> = Vec::new();
    for c in 0..machine.total_cores() {
        let accesses = match c {
            0 => vec![MemAccess::read(LineAddr(100), Cycles(10))],
            1 => {
                // Pad with hits so core 0's fill lands before the peer read.
                let mut v = vec![MemAccess::read(LineAddr(0), Cycles(10)); 40];
                v.push(MemAccess::read(LineAddr(100), Cycles(10)));
                v
            }
            _ => vec![],
        };
        streams.push(Box::new(Script(accesses, 0)));
    }
    let mut sim = DirSimulator::new(machine, streams, 41).unwrap();
    let stats = sim.run();
    sim.validate_coherence().unwrap();
    assert_eq!(stats.peer_hits, 1);
    assert_eq!(stats.read_txns, 2, "lines 0 and 100 only");
}

#[test]
fn full_workload_stays_coherent_and_deterministic() {
    let profile = flexsnoop_workload::profiles::specweb().with_accesses(800);
    let mut a = DirSimulator::for_workload(&profile, 3, 8).unwrap();
    let sa = a.run();
    a.validate_coherence().unwrap();
    let mut b = DirSimulator::for_workload(&profile, 3, 8).unwrap();
    let sb = b.run();
    assert_eq!(sa.exec_cycles, sb.exec_cycles);
    assert_eq!(sa.link_hops, sb.link_hops);
    assert!(sa.read_txns > 0);
    assert!(sa.energy_nj() > 0.0);
}

#[test]
fn energy_accounts_for_all_components() {
    let (_, stats) = run(&[&[(100, WR)], &[(0, RD), (0, RD), (100, RD)]]);
    let e = stats.energy_nj();
    // At least: request/data hops, one dram read per miss, dir accesses.
    assert!(e > 24.0, "energy {e}");
    assert!(stats.dir_accesses >= 3);
    assert!(stats.link_hops >= 4);
}
