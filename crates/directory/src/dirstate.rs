//! The full-map directory state.

use flexsnoop_engine::FxHashMap;
use flexsnoop_mem::{CmpId, LineAddr};

/// A directory entry: where a line's copies live.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DirEntry {
    /// Only memory holds the line.
    #[default]
    Uncached,
    /// Clean copies at these nodes; memory is valid.
    Shared(Vec<CmpId>),
    /// One node owns the line dirty; memory is stale.
    Owned(CmpId),
}

impl DirEntry {
    /// Whether `node` holds a copy according to the directory.
    pub fn includes(&self, node: CmpId) -> bool {
        match self {
            DirEntry::Uncached => false,
            DirEntry::Shared(sharers) => sharers.contains(&node),
            DirEntry::Owned(owner) => *owner == node,
        }
    }

    /// Number of nodes holding a copy.
    pub fn copies(&self) -> usize {
        match self {
            DirEntry::Uncached => 0,
            DirEntry::Shared(sharers) => sharers.len(),
            DirEntry::Owned(_) => 1,
        }
    }
}

/// One home node's full-map directory (entries spring into existence on
/// first touch; absent means `Uncached`).
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: FxHashMap<LineAddr, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `line` (`Uncached` if never touched).
    pub fn entry(&self, line: LineAddr) -> &DirEntry {
        self.entries.get(&line).unwrap_or(&DirEntry::Uncached)
    }

    /// Records a clean copy at `sharer`.
    ///
    /// # Panics
    ///
    /// Panics if the line is currently `Owned` — the owner must be
    /// downgraded through [`set`](Self::set) first (protocol bug otherwise).
    pub fn add_sharer(&mut self, line: LineAddr, sharer: CmpId) {
        let entry = self.entries.entry(line).or_default();
        match entry {
            DirEntry::Uncached => *entry = DirEntry::Shared(vec![sharer]),
            DirEntry::Shared(sharers) => {
                if !sharers.contains(&sharer) {
                    sharers.push(sharer);
                }
            }
            DirEntry::Owned(owner) => {
                panic!("add_sharer({line}, {sharer}) while owned by {owner}")
            }
        }
    }

    /// Replaces the entry outright.
    pub fn set(&mut self, line: LineAddr, entry: DirEntry) {
        if entry == DirEntry::Uncached {
            self.entries.remove(&line);
        } else {
            self.entries.insert(line, entry);
        }
    }

    /// Removes `node` from the line's sharer set / ownership (an eviction
    /// notification). Silently ignores nodes not present.
    pub fn drop_node(&mut self, line: LineAddr, node: CmpId) {
        let Some(entry) = self.entries.get_mut(&line) else {
            return;
        };
        match entry {
            DirEntry::Uncached => {}
            DirEntry::Shared(sharers) => {
                sharers.retain(|&s| s != node);
                if sharers.is_empty() {
                    self.entries.remove(&line);
                }
            }
            DirEntry::Owned(owner) => {
                if *owner == node {
                    self.entries.remove(&line);
                }
            }
        }
    }

    /// Number of tracked lines (directory storage footprint).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_lines_are_uncached() {
        let d = Directory::new();
        assert_eq!(d.entry(LineAddr(5)), &DirEntry::Uncached);
        assert!(d.is_empty());
    }

    #[test]
    fn sharers_accumulate_without_duplicates() {
        let mut d = Directory::new();
        d.add_sharer(LineAddr(1), CmpId(2));
        d.add_sharer(LineAddr(1), CmpId(3));
        d.add_sharer(LineAddr(1), CmpId(2));
        assert_eq!(d.entry(LineAddr(1)).copies(), 2);
        assert!(d.entry(LineAddr(1)).includes(CmpId(3)));
        assert!(!d.entry(LineAddr(1)).includes(CmpId(4)));
    }

    #[test]
    fn ownership_round_trip() {
        let mut d = Directory::new();
        d.set(LineAddr(1), DirEntry::Owned(CmpId(7)));
        assert!(d.entry(LineAddr(1)).includes(CmpId(7)));
        d.set(LineAddr(1), DirEntry::Shared(vec![CmpId(7), CmpId(1)]));
        assert_eq!(d.entry(LineAddr(1)).copies(), 2);
    }

    #[test]
    #[should_panic(expected = "while owned")]
    fn adding_sharer_to_owned_line_panics() {
        let mut d = Directory::new();
        d.set(LineAddr(1), DirEntry::Owned(CmpId(0)));
        d.add_sharer(LineAddr(1), CmpId(1));
    }

    #[test]
    fn drop_node_cleans_up() {
        let mut d = Directory::new();
        d.add_sharer(LineAddr(1), CmpId(0));
        d.add_sharer(LineAddr(1), CmpId(1));
        d.drop_node(LineAddr(1), CmpId(0));
        assert_eq!(d.entry(LineAddr(1)).copies(), 1);
        d.drop_node(LineAddr(1), CmpId(1));
        assert_eq!(d.entry(LineAddr(1)), &DirEntry::Uncached);
        assert!(d.is_empty());

        d.set(LineAddr(2), DirEntry::Owned(CmpId(3)));
        d.drop_node(LineAddr(2), CmpId(4)); // not the owner: no-op
        assert_eq!(d.entry(LineAddr(2)), &DirEntry::Owned(CmpId(3)));
        d.drop_node(LineAddr(2), CmpId(3));
        assert_eq!(d.entry(LineAddr(2)), &DirEntry::Uncached);
    }
}
