//! Directory-based coherence on the flexsnoop machine substrate.
//!
//! The paper's §2.1.2 positions directory protocols as the scalable — but
//! indirection-laden — alternative to the embedded-ring design: *"all
//! transactions on a memory line L are directed to the directory at the
//! home node of that line … directories introduce a time-consuming
//! indirection in all transactions \[and\] the directory itself is a
//! complicated component."* This crate implements that alternative on the
//! *same* substrate (cores, L1/L2 caches, 2-D torus, DRAM timing) so the
//! two serialization approaches can be compared head to head:
//!
//! * a full-map directory at each line's home node, tracking
//!   `Uncached / Shared{sharers} / Owned{owner}`;
//! * 2-hop reads for clean lines (requester → home → requester),
//!   3-hop reads for dirty lines (… → owner → requester);
//! * writes that collect invalidations for every sharer through the home;
//! * per-line serialization at the home node — the directory's version of
//!   the ring's transaction ordering.
//!
//! The same workloads, cache geometries and memory timings as the ring
//! simulator apply; see `examples/ring_vs_directory.rs` for the
//! comparison experiment.

pub mod dirstate;
pub mod sim;
#[cfg(test)]
mod sim_tests;

pub use dirstate::{DirEntry, Directory};
pub use sim::{DirSimulator, DirStats};
