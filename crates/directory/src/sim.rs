//! The directory-protocol machine simulator.
//!
//! Same substrate as the ring simulator — cores, L1/L2 caches, 2-D torus,
//! DRAM — but transactions are serialized by each line's home directory
//! instead of by a snoop ring:
//!
//! * **read, clean** (2 hops): requester → home (directory + DRAM) →
//!   requester.
//! * **read, dirty** (3 hops): requester → home → owner (cache probe) →
//!   requester; the owner downgrades and writes back.
//! * **write**: requester → home; the home invalidates every sharer (or
//!   forwards to the dirty owner) and grants exclusive ownership.
//!
//! Model notes: the directory is a full map (no capacity evictions);
//! clean cache evictions are silent, so the directory may hold stale
//! sharers — invalidations to departed sharers are harmless no-ops, which
//! is the standard full-map trade-off. Dirty evictions notify the home
//! (write-back plus ownership drop). Per-line transactions serialize at
//! the home node: concurrent reads of a clean line proceed together,
//! anything involving a write is exclusive.

use std::collections::VecDeque;

use flexsnoop::oracle::Violation;
use flexsnoop::probe::{CountingProbe, Probe, ProbeReport};
use flexsnoop::MachineConfig;
use flexsnoop_engine::{Cycle, Cycles, FxHashMap, Resource, Scheduler};
use flexsnoop_mem::{invariants, CacheGeometry, CmpCaches, CmpId, CoherState, LineAddr};
use flexsnoop_metrics::Histogram;
use flexsnoop_net::{Torus, TorusConfig};
use flexsnoop_workload::{AccessStream, MemAccess, WorkloadProfile};

use crate::dirstate::{DirEntry, Directory};

/// Per-event energy constants, aligned with the ring simulator's anchors
/// so the two protocols' energy is comparable: interconnect link crossings
/// at 3.17 nJ, cache probes/invalidations at 0.69 nJ, DRAM lines at 24 nJ,
/// plus a 0.40 nJ directory access (a small SRAM lookup + update).
const LINK_NJ: f64 = 3.17;
const PROBE_NJ: f64 = 0.69;
const DRAM_NJ: f64 = 24.0;
const DIR_NJ: f64 = 0.40;

/// Statistics from one directory-protocol run.
#[derive(Debug, Clone, Default)]
pub struct DirStats {
    /// Directory read transactions.
    pub read_txns: u64,
    /// Directory write transactions.
    pub write_txns: u64,
    /// Reads satisfied in 2 hops (home/memory).
    pub reads_two_hop: u64,
    /// Reads satisfied in 3 hops (dirty owner forward).
    pub reads_three_hop: u64,
    /// Invalidation messages sent to sharers.
    pub invalidations: u64,
    /// Torus link crossings by protocol messages.
    pub link_hops: u64,
    /// Directory lookups/updates.
    pub dir_accesses: u64,
    /// DRAM line reads.
    pub mem_reads: u64,
    /// DRAM line writes (write-backs).
    pub mem_writes: u64,
    /// Cache probes and invalidations performed at remote CMPs.
    pub probes: u64,
    /// Hits in the requester's own L1/L2.
    pub local_hits: u64,
    /// Supplies by a peer cache in the same CMP.
    pub peer_hits: u64,
    /// Transactions queued behind a same-line transaction at the home.
    pub home_conflicts: u64,
    /// Read latency, issue to data arrival.
    pub read_latency: Histogram,
    /// Cycles until every core finished.
    pub exec_cycles: Cycle,
}

impl DirStats {
    /// Total protocol energy in nanojoules (the ring simulator's Figure 9
    /// scope: coherence traffic only, not program DRAM fills — except that
    /// in a directory protocol every miss *is* coherence traffic through
    /// the home, so directory DRAM reads are included).
    pub fn energy_nj(&self) -> f64 {
        self.link_hops as f64 * LINK_NJ
            + self.probes as f64 * PROBE_NJ
            + self.mem_reads as f64 * DRAM_NJ
            + self.mem_writes as f64 * DRAM_NJ
            + self.dir_accesses as f64 * DIR_NJ
    }

    /// Fraction of reads that needed the 3-hop dirty path.
    pub fn three_hop_fraction(&self) -> f64 {
        if self.read_txns == 0 {
            0.0
        } else {
            self.reads_three_hop as f64 / self.read_txns as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    CoreIssue {
        core: usize,
        access: MemAccess,
        replay: bool,
    },
    /// The request reaches the line's home node.
    HomeReceive { txn: TxnId },
    /// Data (and, for writes, the exclusive grant) reaches the requester.
    Complete { txn: TxnId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct TxnId(u64);

#[derive(Debug)]
struct Txn {
    line: LineAddr,
    write: bool,
    requester: CmpId,
    core: usize,
    issue: Cycle,
    /// Install state decided at the home.
    fill: CoherState,
}

struct CoreState {
    stream: Box<dyn AccessStream + Send>,
    issued: u64,
    limit: u64,
    done: bool,
}

/// The directory-protocol simulator.
pub struct DirSimulator {
    cfg: MachineConfig,
    sched: Scheduler<Event>,
    cmps: Vec<CmpCaches>,
    dirs: Vec<Directory>,
    torus: Torus,
    mem_ports: Vec<Resource>,
    dir_ports: Vec<Resource>,
    snoop_ports: Vec<Resource>,
    cores: Vec<CoreState>,
    txns: FxHashMap<TxnId, Txn>,
    next_txn: u64,
    /// Per-line `(readers, writers)` in flight, serialized at the home.
    line_busy: FxHashMap<LineAddr, (u32, u32)>,
    line_waiters: FxHashMap<LineAddr, VecDeque<(usize, MemAccess)>>,
    stats: DirStats,
    /// Observability sink, mirroring the ring simulator's (see
    /// `flexsnoop::probe`): fed event-dispatch queue depths and
    /// per-message torus latencies.
    probe: Option<Box<dyn Probe>>,
    /// Per-completion invariant oracle, mirroring the ring simulator's
    /// (see `flexsnoop::oracle`).
    checks: bool,
    violations: Vec<Violation>,
    active_cores: usize,
    finished: bool,
}

impl std::fmt::Debug for DirSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirSimulator")
            .field("nodes", &self.cfg.nodes)
            .field("now", &self.sched.now())
            .finish_non_exhaustive()
    }
}

impl DirSimulator {
    /// Builds a directory machine with the same configuration vocabulary
    /// as the ring simulator.
    ///
    /// # Errors
    ///
    /// Returns a message if the configuration is invalid or the stream
    /// count does not match the core count.
    pub fn new(
        machine: MachineConfig,
        streams: Vec<Box<dyn AccessStream + Send>>,
        limit: u64,
    ) -> Result<Self, String> {
        machine.validate()?;
        if streams.len() != machine.total_cores() {
            return Err(format!(
                "expected {} streams, got {}",
                machine.total_cores(),
                streams.len()
            ));
        }
        let l1 = CacheGeometry::from_capacity(
            machine.caches.l1_bytes,
            machine.caches.l1_ways,
            machine.caches.line_bytes,
        );
        let l2 = CacheGeometry::from_capacity(
            machine.caches.l2_bytes,
            machine.caches.l2_ways,
            machine.caches.line_bytes,
        );
        let active_cores = streams.len();
        Ok(Self {
            sched: Scheduler::new(),
            cmps: (0..machine.nodes)
                .map(|_| CmpCaches::new(machine.cores_per_cmp, l1, l2))
                .collect(),
            dirs: (0..machine.nodes).map(|_| Directory::new()).collect(),
            torus: Torus::new(TorusConfig::near_square(
                machine.nodes,
                machine.data_net.hop_latency,
                machine.data_net.router_latency,
                machine.data_net.link_service,
            )),
            mem_ports: (0..machine.nodes).map(|_| Resource::new()).collect(),
            dir_ports: (0..machine.nodes).map(|_| Resource::new()).collect(),
            snoop_ports: (0..machine.nodes).map(|_| Resource::new()).collect(),
            cores: streams
                .into_iter()
                .map(|stream| CoreState {
                    stream,
                    issued: 0,
                    limit,
                    done: false,
                })
                .collect(),
            txns: FxHashMap::default(),
            next_txn: 0,
            line_busy: FxHashMap::default(),
            line_waiters: FxHashMap::default(),
            stats: DirStats::default(),
            probe: None,
            checks: cfg!(feature = "strict-invariants"),
            violations: Vec::new(),
            active_cores,
            finished: false,
            cfg: machine,
        })
    }

    /// Convenience constructor mirroring the ring simulator's.
    ///
    /// # Errors
    ///
    /// Returns a message if the profile's cores do not divide `nodes`.
    pub fn for_workload(
        profile: &WorkloadProfile,
        seed: u64,
        nodes: usize,
    ) -> Result<Self, String> {
        if nodes == 0 || !profile.cores.is_multiple_of(nodes) {
            return Err(format!(
                "workload cores ({}) must be a multiple of {nodes} nodes",
                profile.cores
            ));
        }
        let machine = MachineConfig {
            nodes,
            ..MachineConfig::isca2006(profile.cores / nodes)
        };
        let streams: Vec<Box<dyn AccessStream + Send>> = profile
            .streams(seed)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
            .collect();
        Self::new(machine, streams, profile.accesses_per_core)
    }

    fn cmp_of(&self, core: usize) -> CmpId {
        CmpId(core / self.cfg.cores_per_cmp)
    }

    fn local_idx(&self, core: usize) -> usize {
        core % self.cfg.cores_per_cmp
    }

    /// Sends a protocol message over the torus, counting hops and energy.
    fn send(&mut self, from: CmpId, to: CmpId, at: Cycle) -> Cycle {
        self.stats.link_hops += self.torus.config().hops(from, to) as u64;
        let arrival = self.torus.send(from, to, at);
        if let Some(p) = self.probe.as_deref_mut() {
            p.ring_hop(arrival - at);
        }
        arrival
    }

    /// Installs the built-in counting probe (see `flexsnoop::probe`). The
    /// directory machine has no ring, predictors or presence filters, so
    /// only the event-dispatch and interconnect-latency hooks fire; the
    /// latency histogram records whole torus traversals rather than single
    /// ring hops. Call before [`run`](Self::run).
    pub fn enable_probe(&mut self) {
        self.probe = Some(Box::new(CountingProbe::new()));
    }

    /// The aggregated probe counters, if a report-producing probe is
    /// installed.
    pub fn probe_report(&self) -> Option<ProbeReport> {
        self.probe.as_ref().and_then(|p| p.report())
    }

    /// Runs to completion.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run(&mut self) -> DirStats {
        assert!(!self.finished, "run() may only be called once");
        self.finished = true;
        for core in 0..self.cores.len() {
            self.advance_core(core, Cycle::ZERO);
        }
        while let Some((now, ev)) = self.sched.pop() {
            if let Some(p) = self.probe.as_deref_mut() {
                p.event_dispatched(self.sched.len());
            }
            match ev {
                Event::CoreIssue {
                    core,
                    access,
                    replay,
                } => self.on_issue(core, access, replay, now),
                Event::HomeReceive { txn } => self.on_home(txn, now),
                Event::Complete { txn } => self.on_complete(txn, now),
            }
        }
        assert_eq!(self.active_cores, 0, "cores unfinished at drain");
        self.stats.exec_cycles = self.sched.now();
        self.stats.clone()
    }

    fn advance_core(&mut self, core: usize, at: Cycle) {
        let c = &mut self.cores[core];
        if c.issued >= c.limit {
            if !c.done {
                c.done = true;
                self.active_cores -= 1;
            }
            return;
        }
        match c.stream.next_access() {
            Some(access) => {
                c.issued += 1;
                self.sched.schedule_at(
                    at + access.think,
                    Event::CoreIssue {
                        core,
                        access,
                        replay: false,
                    },
                );
            }
            None => {
                c.done = true;
                self.active_cores -= 1;
            }
        }
    }

    fn on_issue(&mut self, core: usize, access: MemAccess, replay: bool, now: Cycle) {
        use flexsnoop_mem::cmp::LocalLookup;
        let node = self.cmp_of(core);
        let local = self.local_idx(core);
        let line = access.line;
        let lookup = self.cmps[node.0].local_lookup(local, line);
        if access.write {
            match lookup {
                LocalLookup::OwnL1(st) | LocalLookup::OwnL2(st) if st.writable_silently() => {
                    if st != CoherState::D {
                        self.cmps[node.0].set_state(local, line, CoherState::D);
                    }
                    if !replay {
                        self.advance_core(core, now + self.cfg.timing.l2_rt);
                    }
                    return;
                }
                _ => self.start_txn(core, access, replay, now),
            }
            return;
        }
        match lookup {
            LocalLookup::OwnL1(_) => {
                self.stats.local_hits += 1;
                self.advance_core(core, now + self.cfg.timing.l1_rt);
            }
            LocalLookup::OwnL2(_) => {
                self.stats.local_hits += 1;
                self.advance_core(core, now + self.cfg.timing.l2_rt);
            }
            LocalLookup::Peer { peer, state } => {
                self.stats.peer_hits += 1;
                let grant = self.snoop_ports[node.0].acquire(now, self.cfg.timing.snoop_occupancy);
                self.cmps[node.0].set_state(peer, line, state.after_local_supply());
                self.fill(node, local, line, CoherState::S);
                self.advance_core(core, grant.start + self.cfg.timing.cmp_bus_rt);
            }
            LocalLookup::Miss => self.start_txn(core, access, replay, now),
        }
    }

    fn start_txn(&mut self, core: usize, access: MemAccess, replay: bool, now: Cycle) {
        let line = access.line;
        let write = access.write;
        if write && !replay {
            // Stores drain from a store buffer, as in the ring model.
            self.advance_core(core, now + self.cfg.timing.l2_rt);
        }
        let (readers, writers) = self.line_busy.get(&line).copied().unwrap_or((0, 0));
        let conflict = if write {
            readers > 0 || writers > 0
        } else {
            writers > 0
        };
        if conflict {
            self.stats.home_conflicts += 1;
            self.line_waiters
                .entry(line)
                .or_default()
                .push_back((core, access));
            return;
        }
        let slot = self.line_busy.entry(line).or_insert((0, 0));
        if write {
            slot.1 += 1;
            self.stats.write_txns += 1;
        } else {
            slot.0 += 1;
            self.stats.read_txns += 1;
        }
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let requester = self.cmp_of(core);
        self.txns.insert(
            id,
            Txn {
                line,
                write,
                requester,
                core,
                issue: now,
                fill: CoherState::Sl,
            },
        );
        let home = CmpId(line.home_node(self.cfg.nodes));
        let at_home = self.send(requester, home, now + self.cfg.timing.gateway_latency);
        self.sched
            .schedule_at(at_home, Event::HomeReceive { txn: id });
    }

    /// All directory work happens when the request reaches the home: the
    /// entry is read and updated, and the completion time is composed from
    /// the resource timings of the nodes involved.
    fn on_home(&mut self, txn_id: TxnId, now: Cycle) {
        let txn = &self.txns[&txn_id];
        let line = txn.line;
        let write = txn.write;
        let requester = txn.requester;
        let home = CmpId(line.home_node(self.cfg.nodes));
        self.stats.dir_accesses += 1;
        // A small SRAM lookup; the port serializes concurrent transactions.
        let dir_done = self.dir_ports[home.0].acquire(now, Cycles(4)).end;
        let entry = self.dirs[home.0].entry(line).clone();
        let (data_at, fill) = if write {
            self.home_write(txn_id, &entry, home, requester, dir_done)
        } else {
            self.home_read(txn_id, &entry, home, requester, dir_done)
        };
        if let Some(t) = self.txns.get_mut(&txn_id) {
            t.fill = fill;
        }
        self.sched
            .schedule_at(data_at, Event::Complete { txn: txn_id });
    }

    fn dram(&mut self, home: CmpId, at: Cycle) -> Cycle {
        self.stats.mem_reads += 1;
        let grant = self.mem_ports[home.0].acquire(at, self.cfg.memory.occupancy);
        grant.start + self.cfg.memory.dram_latency + self.cfg.memory.controller_overhead
    }

    /// Probes/invalidates at a remote CMP: bus occupancy + probe time.
    fn probe(&mut self, node: CmpId, at: Cycle) -> Cycle {
        self.stats.probes += 1;
        let grant = self.snoop_ports[node.0].acquire(at, self.cfg.timing.snoop_occupancy);
        grant.start + self.cfg.timing.snoop_time
    }

    fn home_read(
        &mut self,
        txn_id: TxnId,
        entry: &DirEntry,
        home: CmpId,
        requester: CmpId,
        dir_done: Cycle,
    ) -> (Cycle, CoherState) {
        let line = self.txns[&txn_id].line;
        match entry {
            DirEntry::Uncached | DirEntry::Shared(_) => {
                self.stats.reads_two_hop += 1;
                let dram_done = self.dram(home, dir_done);
                let data_at = self.send(home, requester, dram_done);
                self.dirs[home.0].add_sharer(line, requester);
                (data_at, CoherState::Sl)
            }
            DirEntry::Owned(owner) => {
                let owner = *owner;
                self.stats.reads_three_hop += 1;
                let at_owner = self.send(home, owner, dir_done);
                let probed = self.probe(owner, at_owner);
                // The owner downgrades to a shared local master and writes
                // the dirty line back to the home.
                if let Some((core, st)) = self.cmps[owner.0].supplier_of(line) {
                    debug_assert!(st.is_dirty());
                    self.cmps[owner.0].set_state(core, line, CoherState::Sl);
                }
                self.stats.mem_writes += 1;
                let _ = self.send(owner, home, probed);
                let data_at = self.send(owner, requester, probed);
                self.dirs[home.0].set(line, DirEntry::Shared(vec![owner, requester]));
                (data_at, CoherState::Sl)
            }
        }
    }

    fn home_write(
        &mut self,
        txn_id: TxnId,
        entry: &DirEntry,
        home: CmpId,
        requester: CmpId,
        dir_done: Cycle,
    ) -> (Cycle, CoherState) {
        let line = self.txns[&txn_id].line;
        match entry {
            DirEntry::Uncached => {
                let dram_done = self.dram(home, dir_done);
                let data_at = self.send(home, requester, dram_done);
                self.dirs[home.0].set(line, DirEntry::Owned(requester));
                (data_at, CoherState::D)
            }
            DirEntry::Shared(sharers) => {
                // Invalidate every sharer (possibly including stale ones);
                // the grant waits for the slowest acknowledgement.
                let sharers = sharers.clone();
                let mut acks_done = dir_done;
                let requester_had_copy = sharers.contains(&requester);
                for sharer in sharers {
                    if sharer == requester {
                        continue; // the upgrader keeps (and rewrites) its copy
                    }
                    self.stats.invalidations += 1;
                    let at_sharer = self.send(home, sharer, dir_done);
                    let probed = self.probe(sharer, at_sharer);
                    self.cmps[sharer.0].invalidate_all(line);
                    let ack_at = self.send(sharer, home, probed);
                    acks_done = acks_done.max(ack_at);
                }
                let data_ready = if requester_had_copy {
                    acks_done // upgrade: no data needed
                } else {
                    self.dram(home, dir_done).max(acks_done)
                };
                let grant_at = self.send(home, requester, data_ready);
                self.dirs[home.0].set(line, DirEntry::Owned(requester));
                (grant_at, CoherState::D)
            }
            DirEntry::Owned(owner) => {
                let owner = *owner;
                let at_owner = self.send(home, owner, dir_done);
                let probed = self.probe(owner, at_owner);
                self.cmps[owner.0].invalidate_all(line);
                self.stats.invalidations += 1;
                let data_at = self.send(owner, requester, probed);
                self.dirs[home.0].set(line, DirEntry::Owned(requester));
                (data_at, CoherState::D)
            }
        }
    }

    fn on_complete(&mut self, txn_id: TxnId, now: Cycle) {
        let Some(txn) = self.txns.remove(&txn_id) else {
            return;
        };
        let node = txn.requester;
        let local = self.local_idx(txn.core);
        if txn.write {
            // Clear any local copies (peers) and take exclusive ownership.
            self.cmps[node.0].invalidate_all(txn.line);
            self.fill(node, local, txn.line, CoherState::D);
        } else {
            let state = if self.cmps[node.0].has_copy(txn.line) {
                CoherState::S
            } else {
                txn.fill
            };
            self.fill(node, local, txn.line, state);
            self.stats.read_latency.record((now - txn.issue).as_u64());
            self.advance_core(txn.core, now);
        }
        // Oracle hook: the transaction is complete, so the line's copies
        // must satisfy the Figure 2(b) invariants again.
        if self.checks {
            if let Err(what) = invariants::check_line(&self.cmps, txn.line) {
                self.record_violation(txn_id, now, txn.line, what);
            }
        }
        // Release the line and wake waiters.
        if let Some(slot) = self.line_busy.get_mut(&txn.line) {
            if txn.write {
                slot.1 = slot.1.saturating_sub(1);
            } else {
                slot.0 = slot.0.saturating_sub(1);
            }
            if *slot == (0, 0) {
                self.line_busy.remove(&txn.line);
            }
        }
        if let Some(waiters) = self.line_waiters.remove(&txn.line) {
            for (core, access) in waiters {
                self.sched.schedule_at(
                    now + Cycles(1),
                    Event::CoreIssue {
                        core,
                        access,
                        replay: true,
                    },
                );
            }
        }
    }

    /// Fills a line, handling the victim: dirty victims write back and
    /// notify the home (ownership drop); clean evictions are silent.
    fn fill(&mut self, node: CmpId, local: usize, line: LineAddr, state: CoherState) {
        if let Some(victim) = self.cmps[node.0].fill(local, line, state) {
            if victim.needs_writeback() {
                self.stats.mem_writes += 1;
                let home = CmpId(victim.line.home_node(self.cfg.nodes));
                let now = self.sched.now();
                let _ = self.send(node, home, now);
                self.dirs[home.0].drop_node(victim.line, node);
                self.stats.dir_accesses += 1;
            }
        }
    }

    /// The same global storage check as the ring simulator.
    ///
    /// # Errors
    ///
    /// Returns the first incompatible pair of copies.
    pub fn validate_coherence(&self) -> Result<(), String> {
        invariants::check_all(&self.cmps)
    }

    /// Enables the per-completion invariant oracle, mirroring the ring
    /// simulator's [`enable_invariant_checks`]. Call before
    /// [`run`](Self::run).
    ///
    /// [`enable_invariant_checks`]: flexsnoop::Simulator::enable_invariant_checks
    pub fn enable_invariant_checks(&mut self) {
        self.checks = true;
    }

    /// Violations recorded by the invariant oracle, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The first violation the oracle detected, if any.
    pub fn first_violation(&self) -> Option<&Violation> {
        self.violations.first()
    }

    /// A canonical `(line, cmp, core, state)` snapshot of every resident L2
    /// line, comparable against `flexsnoop::Simulator::state_snapshot`.
    pub fn state_snapshot(&self) -> Vec<(LineAddr, usize, usize, CoherState)> {
        invariants::state_snapshot(&self.cmps)
    }

    fn record_violation(&mut self, txn: TxnId, at: Cycle, line: LineAddr, what: String) {
        // The directory's transaction ids are sequential, so they embed
        // loss-free into the ring's arena-style id (slot = id, gen = 0).
        let v = Violation {
            txn: flexsnoop::TxnId(txn.0),
            at,
            line,
            what,
        };
        if cfg!(feature = "strict-invariants") {
            panic!("protocol invariant violated: {v}");
        }
        self.violations.push(v);
    }

    /// The coherence state of one line in one core's L2.
    pub fn line_state(&self, node: CmpId, core: usize, line: LineAddr) -> CoherState {
        self.cmps[node.0].l2(core).state_of(line)
    }
}
