//! Generic set-associative cache array with LRU replacement.
//!
//! Used for the L2 data caches, the L1 tag filters, and the Subset/Exact
//! supplier-predictor tables (paper §4.3.1), all of which are
//! set-associative structures differing only in what they store per line.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter};

use crate::addr::LineAddr;

/// Geometry of a set-associative array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// Builds a geometry from a total entry count and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways`, if the resulting set
    /// count is not a power of two, or if either argument is zero.
    pub fn from_entries(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "geometry must be non-empty");
        assert!(
            entries.is_multiple_of(ways),
            "entries ({entries}) must be a multiple of ways ({ways})"
        );
        let sets = entries / ways;
        assert!(
            sets.is_power_of_two(),
            "set count ({sets}) must be a power of two"
        );
        CacheGeometry { sets, ways }
    }

    /// Builds a geometry from a capacity in bytes (e.g. a 512 KB, 8-way,
    /// 64 B-line L2).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CacheGeometry::from_entries`].
    pub fn from_capacity(bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(line_bytes > 0, "line size must be positive");
        assert!(
            bytes.is_multiple_of(line_bytes),
            "capacity must be a whole number of lines"
        );
        Self::from_entries(bytes / line_bytes, ways)
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// The set index for a line address.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> usize {
        // `sets` is asserted to be a power of two at construction, so the
        // modulo reduces to a mask (a hardware divide here would sit on
        // every tag probe in the simulator's hot path).
        debug_assert!(self.sets.is_power_of_two());
        (line.0 & (self.sets as u64 - 1)) as usize
    }
}

#[derive(Debug, Clone)]
struct Way<V> {
    line: LineAddr,
    value: V,
    last_use: u64,
}

/// A set-associative cache mapping [`LineAddr`] to `V` with true-LRU
/// replacement inside each set.
///
/// # Example
///
/// ```
/// use flexsnoop_mem::{CacheGeometry, LineAddr, SetAssocCache};
///
/// let mut c: SetAssocCache<u32> = SetAssocCache::new(CacheGeometry::from_entries(8, 2));
/// assert!(c.insert(LineAddr(1), 10).is_none());
/// assert_eq!(c.get(LineAddr(1)), Some(&10));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<V> {
    geometry: CacheGeometry,
    sets: Vec<Vec<Way<V>>>,
    clock: u64,
    occupied: usize,
}

impl<V> SetAssocCache<V> {
    /// Creates an empty cache with the given geometry.
    ///
    /// Way storage is allocated lazily per set on first insert, so a
    /// million cold caches (or one huge flat predictor bank) cost only
    /// their set headers until touched — load-bearing for the
    /// `bench --scale` node counts.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = (0..geometry.sets).map(|_| Vec::new()).collect();
        Self {
            geometry,
            sets,
            clock: 0,
            occupied: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `line` without touching LRU state (a *probe*, as a snoop
    /// would perform on the tag array).
    pub fn peek(&self, line: LineAddr) -> Option<&V> {
        self.sets[self.geometry.set_of(line)]
            .iter()
            .find(|w| w.line == line)
            .map(|w| &w.value)
    }

    /// Looks up `line`, promoting it to most-recently-used on hit.
    pub fn get(&mut self, line: LineAddr) -> Option<&V> {
        let stamp = self.tick();
        let set = &mut self.sets[self.geometry.set_of(line)];
        let way = set.iter_mut().find(|w| w.line == line)?;
        way.last_use = stamp;
        Some(&way.value)
    }

    /// Mutable lookup, promoting to most-recently-used on hit.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        let stamp = self.tick();
        let set = &mut self.sets[self.geometry.set_of(line)];
        let way = set.iter_mut().find(|w| w.line == line)?;
        way.last_use = stamp;
        Some(&mut way.value)
    }

    /// Whether `line` is present (no LRU update).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts `line → value`, returning the victim `(line, value)` evicted
    /// to make room, if the set was full. Inserting an already-present line
    /// replaces its value in place (no eviction) and promotes it.
    pub fn insert(&mut self, line: LineAddr, value: V) -> Option<(LineAddr, V)> {
        let stamp = self.tick();
        let ways = self.geometry.ways;
        let set = &mut self.sets[self.geometry.set_of(line)];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.last_use = stamp;
            way.value = value;
            return None;
        }
        let mut victim = None;
        if set.len() == ways {
            // Evict the least recently used way.
            let (idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .expect("full set is non-empty");
            let old = set.swap_remove(idx);
            self.occupied -= 1;
            victim = Some((old.line, old.value));
        }
        set.push(Way {
            line,
            value,
            last_use: stamp,
        });
        self.occupied += 1;
        victim
    }

    /// Removes `line`, returning its value if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<V> {
        let set = &mut self.sets[self.geometry.set_of(line)];
        let idx = set.iter().position(|w| w.line == line)?;
        self.occupied -= 1;
        Some(set.swap_remove(idx).value)
    }

    /// Estimated heap footprint of this array in bytes: the set headers
    /// plus whatever way storage has actually been allocated. Feeds the
    /// `bytes_per_node` figure reported by `bench --scale`.
    pub fn footprint_bytes(&self) -> u64 {
        let headers = self.sets.capacity() * size_of::<Vec<Way<V>>>();
        let ways: usize = self
            .sets
            .iter()
            .map(|set| set.capacity() * size_of::<Way<V>>())
            .sum();
        (size_of::<Self>() + headers + ways) as u64
    }

    /// Iterates over all `(line, value)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &V)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|w| (w.line, &w.value)))
    }

    /// Serializes the full array state — per-set way order (observable
    /// through `swap_remove`-based eviction), per-way `last_use` stamps, and
    /// the LRU clock — using `enc` to encode each stored value.
    ///
    /// Geometry is *not* serialized: per the `Snapshot` overlay contract the
    /// restore target is freshly constructed from the same configuration,
    /// and [`restore_from_with`](Self::restore_from_with) verifies the set
    /// count matches.
    pub fn save_into_with(&self, w: &mut SnapWriter, mut enc: impl FnMut(&V, &mut SnapWriter)) {
        w.put_u64(self.clock);
        w.put_usize(self.sets.len());
        for set in &self.sets {
            w.put_usize(set.len());
            for way in set {
                w.put_u64(way.line.0);
                w.put_u64(way.last_use);
                enc(&way.value, w);
            }
        }
    }

    /// Restores state written by [`save_into_with`](Self::save_into_with)
    /// onto a cache built with the same geometry, using `dec` to decode each
    /// stored value. Way order within each set is reproduced exactly, so
    /// future evictions pick identical victims.
    pub fn restore_from_with(
        &mut self,
        r: &mut SnapReader<'_>,
        mut dec: impl FnMut(&mut SnapReader<'_>) -> Result<V, SnapError>,
    ) -> Result<(), SnapError> {
        self.clock = r.get_u64()?;
        let n_sets = r.get_usize()?;
        if n_sets != self.geometry.sets {
            return Err(SnapError::Corrupt("set count does not match geometry"));
        }
        self.occupied = 0;
        for si in 0..n_sets {
            let len = r.get_usize()?;
            if len > self.geometry.ways {
                return Err(SnapError::Corrupt(
                    "set holds more ways than geometry allows",
                ));
            }
            self.sets[si].clear();
            for _ in 0..len {
                let line = LineAddr(r.get_u64()?);
                if self.geometry.set_of(line) != si {
                    return Err(SnapError::Corrupt("line indexed into the wrong set"));
                }
                let last_use = r.get_u64()?;
                let value = dec(r)?;
                self.sets[si].push(Way {
                    line,
                    value,
                    last_use,
                });
                self.occupied += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache<u32> {
        SetAssocCache::new(CacheGeometry::from_entries(8, 2)) // 4 sets x 2 ways
    }

    #[test]
    fn geometry_from_capacity() {
        let g = CacheGeometry::from_capacity(512 * 1024, 8, 64);
        assert_eq!(g.entries(), 8192);
        assert_eq!(g.sets, 1024);
        assert_eq!(g.ways, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheGeometry::from_entries(12, 2);
    }

    #[test]
    fn insert_then_get() {
        let mut c = small();
        assert!(c.insert(LineAddr(4), 42).is_none());
        assert_eq!(c.get(LineAddr(4)), Some(&42));
        assert_eq!(c.peek(LineAddr(4)), Some(&42));
        assert_eq!(c.get(LineAddr(8)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = small();
        c.insert(LineAddr(4), 1);
        assert!(c.insert(LineAddr(4), 2).is_none());
        assert_eq!(c.get(LineAddr(4)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(LineAddr(0), 10);
        c.insert(LineAddr(4), 20);
        c.get(LineAddr(0)); // make line 0 MRU
        let victim = c.insert(LineAddr(8), 30);
        assert_eq!(victim, Some((LineAddr(4), 20)));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(8)));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c = small();
        c.insert(LineAddr(0), 10);
        c.insert(LineAddr(4), 20);
        c.peek(LineAddr(0)); // must NOT refresh line 0
        let victim = c.insert(LineAddr(8), 30);
        assert_eq!(victim, Some((LineAddr(0), 10)));
    }

    #[test]
    fn remove_frees_the_way() {
        let mut c = small();
        c.insert(LineAddr(0), 10);
        c.insert(LineAddr(4), 20);
        assert_eq!(c.remove(LineAddr(0)), Some(10));
        assert_eq!(c.remove(LineAddr(0)), None);
        assert!(c.insert(LineAddr(8), 30).is_none(), "no eviction needed");
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small();
        for i in 0..4u64 {
            assert!(c.insert(LineAddr(i), i as u32).is_none());
        }
        assert_eq!(c.len(), 4);
        for i in 0..4u64 {
            assert!(c.contains(LineAddr(i)));
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_lru_and_way_order() {
        let mut c = small();
        // Lines 0, 4, 8 map to set 0; build non-trivial LRU + way order
        // (insert 0 and 4, promote 0, evict 4 via 8 — swap_remove reorders).
        c.insert(LineAddr(0), 10);
        c.insert(LineAddr(4), 20);
        c.get(LineAddr(0));
        c.insert(LineAddr(8), 30);
        c.insert(LineAddr(1), 40); // second set, half full

        let mut w = flexsnoop_engine::snap::SnapWriter::new();
        c.save_into_with(&mut w, |v, w| w.put_u64(u64::from(*v)));
        let bytes = w.into_bytes();
        let mut fresh: SetAssocCache<u32> = SetAssocCache::new(CacheGeometry::from_entries(8, 2));
        let mut r = flexsnoop_engine::snap::SnapReader::new(&bytes);
        fresh
            .restore_from_with(&mut r, |r| Ok(r.get_u64()? as u32))
            .unwrap();
        r.expect_eof().unwrap();

        assert_eq!(fresh.len(), c.len());
        // Identical future behavior: the same insert evicts the same victim
        // from both the original and the restored array.
        assert_eq!(c.insert(LineAddr(12), 50), fresh.insert(LineAddr(12), 50));
        let mut a: Vec<_> = c.iter().map(|(l, &v)| (l.0, v)).collect();
        let mut b: Vec<_> = fresh.iter().map(|(l, &v)| (l.0, v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_restore_rejects_geometry_mismatch() {
        let mut c = small();
        c.insert(LineAddr(3), 7);
        let mut w = flexsnoop_engine::snap::SnapWriter::new();
        c.save_into_with(&mut w, |v, w| w.put_u64(u64::from(*v)));
        let bytes = w.into_bytes();
        // 2 sets instead of 4: the restore must fail, not silently remap.
        let mut fresh: SetAssocCache<u32> = SetAssocCache::new(CacheGeometry::from_entries(4, 2));
        let mut r = flexsnoop_engine::snap::SnapReader::new(&bytes);
        let err = fresh
            .restore_from_with(&mut r, |r| Ok(r.get_u64()? as u32))
            .unwrap_err();
        assert!(matches!(err, SnapError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn iter_visits_everything() {
        let mut c = small();
        c.insert(LineAddr(1), 100);
        c.insert(LineAddr(2), 200);
        let mut all: Vec<_> = c.iter().map(|(l, &v)| (l.0, v)).collect();
        all.sort_unstable();
        assert_eq!(all, [(1, 100), (2, 200)]);
    }
}
