//! Memory-system substrate: addresses, coherence states, caches.
//!
//! This crate models the storage side of the embedded-ring multiprocessor of
//! the Flexible Snooping paper (ISCA 2006):
//!
//! * [`addr`] — byte and line addresses, home-node mapping.
//! * [`ids`] — typed identifiers for CMPs and cores.
//! * [`state`] — the seven-state coherence lattice
//!   (`I, S, SL, SG, E, D, T`) with the paper's Figure 2(b) compatibility
//!   matrix and the supply/downgrade transition rules.
//! * [`cache`] — a generic set-associative, LRU-replaced cache array.
//! * [`l2`] — the per-core L2 cache tracking a coherence state per line.
//! * [`cmp`] — a CMP's group of L2s with local-supply and remote-snoop
//!   lookups.
//!
//! The protocol logic that *drives* state changes lives in the `flexsnoop`
//! core crate; this crate only guarantees the storage-level invariants.

pub mod addr;
pub mod cache;
pub mod cmp;
pub mod ids;
pub mod invariants;
pub mod l2;
pub mod state;

pub use addr::{Addr, LineAddr};
pub use cache::{CacheGeometry, SetAssocCache};
pub use cmp::{CmpCaches, InvalidateOutcome};
pub use ids::{CmpId, CoreId};
pub use l2::L2Cache;
pub use state::CoherState;
