//! Byte and cache-line addresses.
//!
//! The coherence protocol operates at cache-line granularity, so most of the
//! simulator passes [`LineAddr`] values around; [`Addr`] exists for the
//! workload layer, which thinks in bytes.

use std::fmt;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this byte, for lines of `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: u64) -> LineAddr {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line address (a byte address shifted right by the line-offset
/// bits). All coherence bookkeeping is keyed by this type.
///
/// # Example
///
/// ```
/// use flexsnoop_mem::{Addr, LineAddr};
///
/// let line = Addr(0x1040).line(64);
/// assert_eq!(line, LineAddr(0x41));
/// assert_eq!(line.byte_addr(64), Addr(0x1040));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line.
    pub fn byte_addr(self, line_bytes: u64) -> Addr {
        Addr(self.0 << line_bytes.trailing_zeros())
    }

    /// The home node of this line among `nodes` memory-interleaved CMPs.
    ///
    /// The shared memory is physically distributed one slice per CMP
    /// (paper Figure 2a); lines are interleaved line-by-line across slices.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn home_node(self, nodes: usize) -> usize {
        assert!(nodes > 0, "home_node needs at least one node");
        (self.0 % nodes as u64) as usize
    }

    /// Extracts `bits` consecutive address bits starting at bit `lo`,
    /// used by Bloom-filter field hashing and set indexing.
    pub fn bits(self, lo: u32, bits: u32) -> u64 {
        debug_assert!(bits <= 64);
        if bits == 64 {
            self.0 >> lo
        } else {
            (self.0 >> lo) & ((1u64 << bits) - 1)
        }
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_to_line_and_back() {
        let a = Addr(0x12345);
        let l = a.line(64);
        assert_eq!(l, LineAddr(0x12345 >> 6));
        assert_eq!(l.byte_addr(64), Addr(0x12340));
    }

    #[test]
    fn same_line_bytes_map_together() {
        assert_eq!(Addr(0x100).line(64), Addr(0x13f).line(64));
        assert_ne!(Addr(0x100).line(64), Addr(0x140).line(64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_size_panics() {
        Addr(0).line(48);
    }

    #[test]
    fn home_node_interleaves() {
        assert_eq!(LineAddr(0).home_node(8), 0);
        assert_eq!(LineAddr(7).home_node(8), 7);
        assert_eq!(LineAddr(8).home_node(8), 0);
        assert_eq!(LineAddr(13).home_node(8), 5);
    }

    #[test]
    fn bit_extraction() {
        let l = LineAddr(0b1011_0110);
        assert_eq!(l.bits(0, 4), 0b0110);
        assert_eq!(l.bits(4, 4), 0b1011);
        assert_eq!(l.bits(2, 3), 0b101);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr(0x40).to_string(), "0x40");
        assert_eq!(LineAddr(0x40).to_string(), "line 0x40");
    }
}
