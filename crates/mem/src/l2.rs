//! Per-core private L2 cache with coherence-state tracking.
//!
//! The L2 is the coherence point in the modeled machine (paper Figure 2a):
//! snoops probe L2 tag arrays, and the supplier predictor tracks which lines
//! the CMP's L2s hold in supplier states. Only valid lines are stored;
//! absence means state `I`.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

use crate::addr::LineAddr;
use crate::cache::{CacheGeometry, SetAssocCache};
use crate::state::CoherState;

/// A line evicted from an L2 by a conflicting fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The evicted line.
    pub line: LineAddr,
    /// Its state at eviction time; `D`/`T` victims must be written back.
    pub state: CoherState,
}

impl Eviction {
    /// Whether this victim must be written back to memory.
    pub fn needs_writeback(&self) -> bool {
        self.state.is_dirty()
    }
}

/// A private L2 cache: a set-associative array of coherence states.
///
/// # Example
///
/// ```
/// use flexsnoop_mem::{CacheGeometry, CoherState, L2Cache, LineAddr};
///
/// let mut l2 = L2Cache::new(CacheGeometry::from_entries(8, 2));
/// l2.fill(LineAddr(3), CoherState::E);
/// assert_eq!(l2.state_of(LineAddr(3)), CoherState::E);
/// assert_eq!(l2.state_of(LineAddr(9)), CoherState::I);
/// ```
#[derive(Debug, Clone)]
pub struct L2Cache {
    array: SetAssocCache<CoherState>,
}

impl L2Cache {
    /// Creates an empty L2 with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        Self {
            array: SetAssocCache::new(geometry),
        }
    }

    /// The coherence state of `line` (`I` if not cached). Does not disturb
    /// LRU — this is what a snoop probe does.
    pub fn state_of(&self, line: LineAddr) -> CoherState {
        self.array.peek(line).copied().unwrap_or(CoherState::I)
    }

    /// Like [`state_of`](Self::state_of) but refreshes LRU — this is what a
    /// demand access by the owning core does.
    pub fn access(&mut self, line: LineAddr) -> CoherState {
        self.array.get(line).copied().unwrap_or(CoherState::I)
    }

    /// Installs `line` in `state`, returning the victim evicted to make
    /// room, if any.
    ///
    /// # Panics
    ///
    /// Panics if `state` is `I` (fill an invalid line by not filling it).
    pub fn fill(&mut self, line: LineAddr, state: CoherState) -> Option<Eviction> {
        assert!(state.is_valid(), "cannot fill a line in state I");
        self.array
            .insert(line, state)
            .map(|(line, state)| Eviction { line, state })
    }

    /// Changes the state of a resident line.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident or `state` is `I`
    /// (use [`invalidate`](Self::invalidate) to drop a line).
    pub fn set_state(&mut self, line: LineAddr, state: CoherState) {
        assert!(state.is_valid(), "use invalidate() to set state I");
        let slot = self
            .array
            .get_mut(line)
            .unwrap_or_else(|| panic!("set_state on non-resident {line}"));
        *slot = state;
    }

    /// Drops `line`, returning its prior state if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<CoherState> {
        self.array.remove(line)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }

    /// Estimated heap footprint in bytes (see
    /// [`SetAssocCache::footprint_bytes`]).
    pub fn footprint_bytes(&self) -> u64 {
        self.array.footprint_bytes()
    }

    /// Iterates over resident `(line, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, CoherState)> + '_ {
        self.array.iter().map(|(l, &s)| (l, s))
    }
}

/// Serializes the underlying array (way order, LRU stamps, per-line
/// coherence states); geometry is reconstructed from configuration per the
/// overlay contract.
impl Snapshot for L2Cache {
    fn save_into(&self, w: &mut SnapWriter) {
        self.array.save_into_with(w, |s, w| s.save_into(w));
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.array.restore_from_with(r, |r| {
            let mut s = CoherState::I;
            s.restore_from(r)?;
            if !s.is_valid() {
                return Err(SnapError::Corrupt("L2 snapshot holds a line in state I"));
            }
            Ok(s)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CoherState::*;

    fn l2() -> L2Cache {
        L2Cache::new(CacheGeometry::from_entries(8, 2))
    }

    #[test]
    fn absent_lines_are_invalid() {
        let c = l2();
        assert_eq!(c.state_of(LineAddr(1)), I);
    }

    #[test]
    fn fill_and_transition() {
        let mut c = l2();
        assert!(c.fill(LineAddr(1), E).is_none());
        c.set_state(LineAddr(1), Sg);
        assert_eq!(c.state_of(LineAddr(1)), Sg);
    }

    #[test]
    fn eviction_reports_dirty() {
        let mut c = l2();
        // Set 0 holds lines 0, 4; filling 8 evicts the LRU one.
        c.fill(LineAddr(0), D);
        c.fill(LineAddr(4), S);
        let ev = c.fill(LineAddr(8), E).expect("eviction");
        assert_eq!(
            ev,
            Eviction {
                line: LineAddr(0),
                state: D
            }
        );
        assert!(ev.needs_writeback());
    }

    #[test]
    fn clean_victim_needs_no_writeback() {
        let ev = Eviction {
            line: LineAddr(0),
            state: Sg,
        };
        assert!(!ev.needs_writeback());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = l2();
        c.fill(LineAddr(2), S);
        assert_eq!(c.invalidate(LineAddr(2)), Some(S));
        assert_eq!(c.invalidate(LineAddr(2)), None);
        assert_eq!(c.state_of(LineAddr(2)), I);
    }

    #[test]
    #[should_panic(expected = "state I")]
    fn filling_invalid_panics() {
        l2().fill(LineAddr(0), I);
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn set_state_on_absent_line_panics() {
        l2().set_state(LineAddr(0), S);
    }

    #[test]
    fn snapshot_round_trip_preserves_states_and_lru() {
        let mut c = l2();
        c.fill(LineAddr(0), D);
        c.fill(LineAddr(4), S);
        c.access(LineAddr(0)); // make line 0 MRU
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&c);
        let mut fresh = L2Cache::new(CacheGeometry::from_entries(8, 2));
        flexsnoop_engine::snap::restore_bytes(&mut fresh, &bytes).unwrap();
        assert_eq!(fresh.state_of(LineAddr(0)), D);
        assert_eq!(fresh.state_of(LineAddr(4)), S);
        // LRU survives the round trip: the next conflicting fill evicts
        // line 4 in both copies.
        assert_eq!(c.fill(LineAddr(8), E), fresh.fill(LineAddr(8), E));
    }

    #[test]
    fn access_promotes_lru() {
        let mut c = l2();
        c.fill(LineAddr(0), S);
        c.fill(LineAddr(4), S);
        c.access(LineAddr(0)); // line 0 becomes MRU
        let ev = c.fill(LineAddr(8), S).unwrap();
        assert_eq!(ev.line, LineAddr(4));
    }

    #[test]
    fn state_of_does_not_promote() {
        let mut c = l2();
        c.fill(LineAddr(0), S);
        c.fill(LineAddr(4), S);
        c.state_of(LineAddr(0)); // probe only
        let ev = c.fill(LineAddr(8), S).unwrap();
        assert_eq!(ev.line, LineAddr(0), "probe must not refresh LRU");
    }
}
