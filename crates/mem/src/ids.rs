//! Typed identifiers for the machine's structural elements.

use std::fmt;

/// Identifies one CMP (chip multiprocessor) node on the ring.
///
/// CMPs are numbered `0..n` in ring order: the unidirectional ring forwards
/// from CMP `i` to CMP `(i + 1) % n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CmpId(pub usize);

impl CmpId {
    /// The next CMP downstream on the unidirectional ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn next_on_ring(self, n: usize) -> CmpId {
        assert!(n > 0, "ring must have at least one node");
        CmpId((self.0 + 1) % n)
    }

    /// Number of ring hops from `self` to `dst` travelling downstream.
    pub fn hops_to(self, dst: CmpId, n: usize) -> usize {
        assert!(n > 0, "ring must have at least one node");
        (dst.0 + n - self.0) % n
    }
}

impl fmt::Display for CmpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cmp{}", self.0)
    }
}

impl From<usize> for CmpId {
    fn from(v: usize) -> Self {
        CmpId(v)
    }
}

/// Identifies one core (and its private L1/L2) globally across the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The CMP this core belongs to, with `cores_per_cmp` cores per chip.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_cmp` is zero.
    pub fn cmp_id(self, cores_per_cmp: usize) -> CmpId {
        assert!(cores_per_cmp > 0, "cores_per_cmp must be positive");
        CmpId(self.0 / cores_per_cmp)
    }

    /// This core's index within its CMP.
    pub fn local_index(self, cores_per_cmp: usize) -> usize {
        assert!(cores_per_cmp > 0, "cores_per_cmp must be positive");
        self.0 % cores_per_cmp
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(v: usize) -> Self {
        CoreId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_neighbour_wraps() {
        assert_eq!(CmpId(0).next_on_ring(8), CmpId(1));
        assert_eq!(CmpId(7).next_on_ring(8), CmpId(0));
    }

    #[test]
    fn ring_hops() {
        assert_eq!(CmpId(2).hops_to(CmpId(5), 8), 3);
        assert_eq!(CmpId(5).hops_to(CmpId(2), 8), 5);
        assert_eq!(CmpId(3).hops_to(CmpId(3), 8), 0);
    }

    #[test]
    fn core_to_cmp_mapping() {
        assert_eq!(CoreId(0).cmp_id(4), CmpId(0));
        assert_eq!(CoreId(3).cmp_id(4), CmpId(0));
        assert_eq!(CoreId(4).cmp_id(4), CmpId(1));
        assert_eq!(CoreId(31).cmp_id(4), CmpId(7));
        assert_eq!(CoreId(6).local_index(4), 2);
    }

    #[test]
    fn display() {
        assert_eq!(CmpId(3).to_string(), "cmp3");
        assert_eq!(CoreId(12).to_string(), "core12");
    }
}
