//! A CMP's group of private caches and its snoop-side lookups.
//!
//! Each CMP holds one private L2 per core plus an L1 tag filter per core
//! (the L1 only affects hit latency; coherence is kept at the L2, with L1s
//! maintained inclusive by invalidation). This module implements the two
//! lookups the protocol needs:
//!
//! * a **local lookup** when a core misses its own caches — can another
//!   cache *in the same CMP* supply (`SL, SG, E, D, T`)?
//! * a **snoop** when a ring request arrives — does any L2 hold the line in
//!   a *supplier state* (`SG, E, D, T`)? All L2s are probed in parallel.

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};
use flexsnoop_engine::FxHashMap;

use crate::addr::LineAddr;
use crate::cache::{CacheGeometry, SetAssocCache};
use crate::l2::{Eviction, L2Cache};
use crate::state::CoherState;

/// Where a core's access was satisfied within its own CMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalLookup {
    /// Hit in the requesting core's own L1 (fast path).
    OwnL1(CoherState),
    /// Hit in the requesting core's own L2.
    OwnL2(CoherState),
    /// Another L2 in the same CMP can supply; carries its local core index
    /// and state.
    Peer {
        /// Index of the supplying core within this CMP.
        peer: usize,
        /// The supplier's state.
        state: CoherState,
    },
    /// No cache in this CMP can supply the line.
    Miss,
}

/// Result of a ring snoop probing all L2s of a CMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnoopResult {
    /// The supplier, if one of the L2s holds the line in `SG`, `E`, `D`, `T`:
    /// `(local core index, state)`.
    pub supplier: Option<(usize, CoherState)>,
    /// Whether *any* L2 holds a valid copy (used to prove exclusivity for
    /// `E` fills when every node is snooped).
    pub any_copy: bool,
}

/// What a CMP-wide invalidation dropped (allocation-free summary of
/// [`CmpCaches::invalidate_all`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidateOutcome {
    /// Number of valid copies invalidated across the CMP's L2s.
    pub copies: u32,
    /// Whether one of them was in a supplier state (`SG`, `E`, `D`, `T`).
    pub had_supplier: bool,
    /// How many dropped copies were in `E`, `D` or `T` — the states under
    /// which memory's own copy must not be used for fills. Kept as a count
    /// (not a flag) so callers maintaining machine-wide residency totals
    /// stay exact even when fault-injection mutations violate the
    /// one-owner invariant.
    pub strong_copies: u32,
}

/// A line's presence summary within one CMP, kept in sync with the L2
/// arrays by every mutating method.
///
/// The Figure 2(b) storage invariants bound what a snoop can find: at most
/// one copy per CMP is in a locally-supplying state (`SL, SG, E, D, T` —
/// any pair of those is same-CMP incompatible, see
/// [`CoherState::compatible_with`]), so one `(core, state)` slot plus a
/// copy count answers every snoop-side question without scanning tag
/// arrays.
#[derive(Debug, Clone, Copy)]
struct Residency {
    /// Valid copies across the CMP's L2s (entry removed when it hits 0).
    copies: u8,
    /// The unique copy in a locally-supplying state, if any.
    local: Option<(u8, CoherState)>,
}

/// The caches of one CMP: per-core L1 tag filters and L2s, plus a
/// residency index that turns snoop probes into single hash lookups.
///
/// In hardware a snoop probes every L2 tag array in parallel; modeling
/// that as a literal scan made `snoop`/`supplier_of` the simulator's
/// hottest functions. The index is a pure lookup accelerator — it never
/// changes any answer (debug builds cross-check it against a full scan on
/// every snoop).
#[derive(Debug, Clone)]
pub struct CmpCaches {
    l1s: Vec<SetAssocCache<()>>,
    l2s: Vec<L2Cache>,
    index: FxHashMap<LineAddr, Residency>,
}

impl CmpCaches {
    /// Creates a CMP with `cores` cores and the given cache geometries.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, l1_geometry: CacheGeometry, l2_geometry: CacheGeometry) -> Self {
        assert!(cores > 0, "a CMP needs at least one core");
        Self {
            l1s: (0..cores)
                .map(|_| SetAssocCache::new(l1_geometry))
                .collect(),
            l2s: (0..cores).map(|_| L2Cache::new(l2_geometry)).collect(),
            // The index holds at most one entry per resident line, bounded
            // by the CMP's total L2 capacity. It starts empty and grows on
            // demand: at million-node scale most CMPs never cache a line,
            // and pre-sizing every CMP's map would dwarf the caches
            // themselves.
            index: FxHashMap::default(),
        }
    }

    /// Records that `core`'s copy of `line` (which was in `state`) left
    /// its L2 — by eviction or invalidation.
    fn index_drop(&mut self, core: usize, line: LineAddr, state: CoherState) {
        let entry = self
            .index
            .get_mut(&line)
            .expect("residency index missed a resident line");
        entry.copies -= 1;
        if state.supplies_locally() {
            debug_assert_eq!(entry.local.map(|(c, _)| c as usize), Some(core));
            entry.local = None;
        }
        if entry.copies == 0 {
            self.index.remove(&line);
        }
    }

    /// Records that `core` now holds `line` in `state` (fill or state
    /// change); `old` is the state the core held it in before (`I` if it
    /// did not).
    fn index_update(&mut self, core: usize, line: LineAddr, old: CoherState, state: CoherState) {
        let entry = self.index.entry(line).or_insert(Residency {
            copies: 0,
            local: None,
        });
        if !old.is_valid() {
            entry.copies += 1;
        }
        if old.supplies_locally() {
            debug_assert_eq!(entry.local.map(|(c, _)| c as usize), Some(core));
            entry.local = None;
        }
        if state.supplies_locally() {
            // A correct protocol never has two locally-supplying copies in
            // one CMP; last-writer-wins here so [`validate_line`] (not the
            // index) stays the detector for injected protocol bugs.
            entry.local = Some((core as u8, state));
        }
    }

    /// Number of cores in this CMP.
    pub fn cores(&self) -> usize {
        self.l2s.len()
    }

    /// Read-only view of a core's L2.
    pub fn l2(&self, core: usize) -> &L2Cache {
        &self.l2s[core]
    }

    /// A core's access as seen by its own CMP: own L1, own L2, then peer
    /// L2s over the intra-CMP bus.
    ///
    /// The L1 tag filter is refreshed on L1 hits and filled on L2 hits
    /// (inclusive hierarchy: the L1 never holds a line its L2 does not).
    pub fn local_lookup(&mut self, core: usize, line: LineAddr) -> LocalLookup {
        let own_state = self.l2s[core].access(line);
        if own_state.is_valid() {
            if self.l1s[core].get(line).is_some() {
                return LocalLookup::OwnL1(own_state);
            }
            self.l1s[core].insert(line, ());
            return LocalLookup::OwnL2(own_state);
        }
        // The line is not in the core's own hierarchy; drop any stale L1 tag.
        self.l1s[core].remove(line);
        if let Some(entry) = self.index.get(&line) {
            if let Some((peer, state)) = entry.local {
                let peer = peer as usize;
                if peer != core {
                    debug_assert_eq!(self.l2s[peer].state_of(line), state);
                    return LocalLookup::Peer { peer, state };
                }
            }
        }
        LocalLookup::Miss
    }

    /// Probes every L2 for a ring snoop (parallel tag lookup in hardware;
    /// here a single residency-index lookup).
    pub fn snoop(&self, line: LineAddr) -> SnoopResult {
        let result = match self.index.get(&line) {
            None => SnoopResult {
                supplier: None,
                any_copy: false,
            },
            Some(entry) => SnoopResult {
                supplier: entry
                    .local
                    .filter(|&(_, s)| s.is_supplier())
                    .map(|(c, s)| (c as usize, s)),
                any_copy: entry.copies > 0,
            },
        };
        debug_assert_eq!(result, self.snoop_scan(line), "residency index drifted");
        result
    }

    /// The scan the hardware's parallel tag probe corresponds to; used to
    /// cross-check the residency index in debug builds (release builds
    /// compile the check and this scan away).
    fn snoop_scan(&self, line: LineAddr) -> SnoopResult {
        let mut supplier = None;
        let mut any_copy = false;
        for (idx, l2) in self.l2s.iter().enumerate() {
            let state = l2.state_of(line);
            if state.is_valid() {
                any_copy = true;
                if state.is_supplier() {
                    debug_assert!(supplier.is_none(), "two suppliers in one CMP for {line}");
                    supplier = Some((idx, state));
                }
            }
        }
        SnoopResult { supplier, any_copy }
    }

    /// Finds the supplier among this CMP's L2s without marking presence
    /// (convenience over [`snoop`](Self::snoop)).
    pub fn supplier_of(&self, line: LineAddr) -> Option<(usize, CoherState)> {
        self.snoop(line).supplier
    }

    /// Every line with at least one valid copy somewhere in this CMP,
    /// sorted so iteration order is deterministic (the residency index is
    /// a hash map). Used by node churn to purge or demote a whole CMP.
    pub fn resident_lines(&self) -> Vec<LineAddr> {
        let mut lines: Vec<LineAddr> = self
            .index
            .iter()
            .filter(|(_, entry)| entry.copies > 0)
            .map(|(&line, _)| line)
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Invalidates `line` everywhere in this CMP (a write snoop hit).
    /// Returns the states the copies were in (empty if none were resident).
    pub fn invalidate_all(&mut self, line: LineAddr) -> Vec<CoherState> {
        let mut dropped = Vec::new();
        if self.index.remove(&line).is_none() {
            // No L2 holds the line, so (inclusive hierarchy) no L1 does
            // either: nothing to do.
            return dropped;
        }
        for (l1, l2) in self.l1s.iter_mut().zip(&mut self.l2s) {
            l1.remove(line);
            if let Some(state) = l2.invalidate(line) {
                dropped.push(state);
            }
        }
        dropped
    }

    /// Like [`invalidate_all`](Self::invalidate_all) but returns only the
    /// counts the protocol acts on, so the per-write-snoop hot path does
    /// not allocate a `Vec` of dropped states.
    pub fn invalidate_all_counted(&mut self, line: LineAddr) -> InvalidateOutcome {
        let mut out = InvalidateOutcome {
            copies: 0,
            had_supplier: false,
            strong_copies: 0,
        };
        if self.index.remove(&line).is_none() {
            return out;
        }
        for (l1, l2) in self.l1s.iter_mut().zip(&mut self.l2s) {
            l1.remove(line);
            if let Some(state) = l2.invalidate(line) {
                out.copies += 1;
                out.had_supplier |= state.is_supplier();
                if matches!(state, CoherState::E | CoherState::D | CoherState::T) {
                    out.strong_copies += 1;
                }
            }
        }
        out
    }

    /// Fills `line` into `core`'s L2 (and L1) in `state`, returning the L2
    /// victim if one was evicted. The victim's L1 tag is dropped to keep
    /// the hierarchy inclusive.
    pub fn fill(&mut self, core: usize, line: LineAddr, state: CoherState) -> Option<Eviction> {
        let old = self.l2s[core].state_of(line);
        let victim = self.l2s[core].fill(line, state);
        if let Some(ev) = victim {
            self.l1s[core].remove(ev.line);
            self.index_drop(core, ev.line, ev.state);
        }
        self.l1s[core].insert(line, ());
        self.index_update(core, line, old, state);
        victim
    }

    /// Changes the state of a resident line in `core`'s L2.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident there (see [`L2Cache::set_state`]).
    pub fn set_state(&mut self, core: usize, line: LineAddr, state: CoherState) {
        let old = self.l2s[core].state_of(line);
        self.l2s[core].set_state(line, state);
        self.index_update(core, line, old, state);
    }

    /// Whether any valid copy of `line` exists in this CMP.
    pub fn has_copy(&self, line: LineAddr) -> bool {
        debug_assert_eq!(
            self.index.contains_key(&line),
            self.l2s.iter().any(|l2| l2.state_of(line).is_valid()),
            "residency index drifted for {line}"
        );
        self.index.contains_key(&line)
    }

    /// Estimated heap footprint of this CMP's cache structures in bytes:
    /// L1 tag filters, L2 arrays, and the residency index.
    pub fn footprint_bytes(&self) -> u64 {
        let l1s: u64 = self.l1s.iter().map(SetAssocCache::footprint_bytes).sum();
        let l2s: u64 = self.l2s.iter().map(L2Cache::footprint_bytes).sum();
        let index = self.index.capacity() * (size_of::<(LineAddr, Residency)>() + 16);
        size_of::<Self>() as u64 + l1s + l2s + index as u64
    }

    /// Debug check: the per-CMP storage invariants from Figure 2(b) —
    /// at most one supplier-state copy and at most one local master.
    pub fn validate_line(&self, line: LineAddr) -> Result<(), String> {
        let states: Vec<CoherState> = self
            .l2s
            .iter()
            .map(|l2| l2.state_of(line))
            .filter(|s| s.is_valid())
            .collect();
        for (i, &a) in states.iter().enumerate() {
            for &b in &states[i + 1..] {
                if !a.compatible_with(b, true) {
                    return Err(format!("{line}: states {a} and {b} coexist in one CMP"));
                }
            }
        }
        Ok(())
    }
}

/// Serializes every L1 tag filter, every L2, and the residency index.
///
/// The index *could* be rebuilt from the L2 arrays, but it is serialized
/// verbatim instead: under fault-injection mutations the one-supplier
/// invariant may be violated, making the index's last-writer-wins `local`
/// slot order-dependent — a rebuild could answer snoops differently than
/// the live index did, breaking bit-identical resume. Keys are written in
/// sorted order so snapshots are deterministic.
impl Snapshot for CmpCaches {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.l1s.len());
        for l1 in &self.l1s {
            l1.save_into_with(w, |_, _| {});
        }
        for l2 in &self.l2s {
            l2.save_into(w);
        }
        let mut lines: Vec<LineAddr> = self.index.keys().copied().collect();
        lines.sort_unstable();
        w.put_usize(lines.len());
        for line in lines {
            let entry = &self.index[&line];
            w.put_u64(line.0);
            w.put_u8(entry.copies);
            match entry.local {
                None => w.put_bool(false),
                Some((core, state)) => {
                    w.put_bool(true);
                    w.put_u8(core);
                    state.save_into(w);
                }
            }
        }
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let cores = r.get_usize()?;
        if cores != self.l1s.len() {
            return Err(SnapError::Corrupt("CMP core count does not match config"));
        }
        for l1 in &mut self.l1s {
            l1.restore_from_with(r, |_| Ok(()))?;
        }
        for l2 in &mut self.l2s {
            l2.restore_from(r)?;
        }
        self.index.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let line = LineAddr(r.get_u64()?);
            let copies = r.get_u8()?;
            if copies == 0 {
                return Err(SnapError::Corrupt("residency entry with zero copies"));
            }
            let local = if r.get_bool()? {
                let core = r.get_u8()?;
                let mut state = CoherState::I;
                state.restore_from(r)?;
                Some((core, state))
            } else {
                None
            };
            self.index.insert(line, Residency { copies, local });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CoherState::*;

    fn cmp() -> CmpCaches {
        CmpCaches::new(
            4,
            CacheGeometry::from_entries(4, 2),
            CacheGeometry::from_entries(16, 4),
        )
    }

    #[test]
    fn miss_everywhere() {
        let mut c = cmp();
        assert_eq!(c.local_lookup(0, LineAddr(1)), LocalLookup::Miss);
        assert_eq!(
            c.snoop(LineAddr(1)),
            SnoopResult {
                supplier: None,
                any_copy: false
            }
        );
    }

    #[test]
    fn own_l2_then_own_l1() {
        let mut c = cmp();
        c.fill(1, LineAddr(5), E);
        // fill() pre-loads the L1 tag, so the first lookup already hits L1.
        assert_eq!(c.local_lookup(1, LineAddr(5)), LocalLookup::OwnL1(E));
        // After an L1-tag eviction the next access reports an L2 hit.
        c.l1s[1].remove(LineAddr(5));
        assert_eq!(c.local_lookup(1, LineAddr(5)), LocalLookup::OwnL2(E));
        assert_eq!(c.local_lookup(1, LineAddr(5)), LocalLookup::OwnL1(E));
    }

    #[test]
    fn peer_supplies_local_master() {
        let mut c = cmp();
        c.fill(2, LineAddr(7), Sl);
        assert_eq!(
            c.local_lookup(0, LineAddr(7)),
            LocalLookup::Peer { peer: 2, state: Sl }
        );
    }

    #[test]
    fn plain_shared_peer_cannot_supply() {
        let mut c = cmp();
        c.fill(2, LineAddr(7), S);
        assert_eq!(c.local_lookup(0, LineAddr(7)), LocalLookup::Miss);
    }

    #[test]
    fn snoop_finds_supplier_and_presence() {
        let mut c = cmp();
        c.fill(0, LineAddr(9), S);
        c.fill(3, LineAddr(9), T);
        let r = c.snoop(LineAddr(9));
        assert_eq!(r.supplier, Some((3, T)));
        assert!(r.any_copy);
    }

    #[test]
    fn snoop_sees_copies_without_supplier() {
        let mut c = cmp();
        c.fill(0, LineAddr(9), S);
        c.fill(1, LineAddr(9), Sl);
        let r = c.snoop(LineAddr(9));
        assert_eq!(r.supplier, None);
        assert!(r.any_copy, "SL is a copy but not a ring supplier");
    }

    #[test]
    fn invalidate_all_clears_cmp() {
        let mut c = cmp();
        c.fill(0, LineAddr(9), S);
        c.fill(1, LineAddr(9), Sl);
        let dropped = c.invalidate_all(LineAddr(9));
        assert_eq!(dropped.len(), 2);
        assert!(!c.has_copy(LineAddr(9)));
        assert_eq!(c.local_lookup(0, LineAddr(9)), LocalLookup::Miss);
    }

    #[test]
    fn fill_eviction_drops_l1_tag() {
        let mut c = cmp();
        // L2 set 0 (4 sets in a 16-entry, 4-way array) holds 4 ways.
        for i in 0..4 {
            c.fill(0, LineAddr(i * 4), S);
        }
        let ev = c.fill(0, LineAddr(16), S).expect("one way must be evicted");
        // The victim's L1 tag must be gone (inclusive hierarchy).
        assert!(c.l1s[0].peek(ev.line).is_none());
    }

    #[test]
    fn snapshot_round_trip_preserves_lookups_and_future_behavior() {
        let mut c = cmp();
        c.fill(0, LineAddr(9), S);
        c.fill(3, LineAddr(9), T);
        c.fill(2, LineAddr(7), Sl);
        c.fill(1, LineAddr(5), D);
        c.invalidate_all(LineAddr(5));

        let bytes = flexsnoop_engine::snap::snapshot_bytes(&c);
        let mut fresh = cmp();
        // Overlay: restoring replaces whatever the fresh CMP held.
        fresh.fill(0, LineAddr(100), E);
        flexsnoop_engine::snap::restore_bytes(&mut fresh, &bytes).unwrap();

        assert_eq!(fresh.snoop(LineAddr(9)), c.snoop(LineAddr(9)));
        assert_eq!(fresh.snoop(LineAddr(5)), c.snoop(LineAddr(5)));
        assert!(!fresh.has_copy(LineAddr(100)));
        assert_eq!(
            fresh.local_lookup(0, LineAddr(7)),
            LocalLookup::Peer { peer: 2, state: Sl }
        );
        // The residency index survives intact: mutating both copies
        // identically keeps them in lock-step (debug builds cross-check the
        // index against a full tag scan on every snoop).
        assert_eq!(
            c.invalidate_all_counted(LineAddr(9)),
            fresh.invalidate_all_counted(LineAddr(9))
        );
        assert_eq!(fresh.snoop(LineAddr(9)), c.snoop(LineAddr(9)));
    }

    #[test]
    fn snapshot_restore_rejects_core_count_mismatch() {
        let c = cmp();
        let bytes = flexsnoop_engine::snap::snapshot_bytes(&c);
        let mut fresh = CmpCaches::new(
            2,
            CacheGeometry::from_entries(4, 2),
            CacheGeometry::from_entries(16, 4),
        );
        let err = flexsnoop_engine::snap::restore_bytes(&mut fresh, &bytes).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn validate_line_catches_two_suppliers() {
        let mut c = cmp();
        c.fill(0, LineAddr(3), E);
        c.fill(1, LineAddr(3), D); // protocol bug injected on purpose
        assert!(c.validate_line(LineAddr(3)).is_err());
    }

    #[test]
    fn validate_line_accepts_legal_mix() {
        let mut c = cmp();
        c.fill(0, LineAddr(3), Sg);
        c.fill(1, LineAddr(3), S);
        assert!(c.validate_line(LineAddr(3)).is_ok());
    }
}
