//! Machine-wide storage-invariant checks shared by the ring and directory
//! simulators.
//!
//! The paper's Figure 2(b) compatibility matrix bounds what copies of a
//! line may coexist; [`check_line`] verifies one line across a whole
//! machine and names the violated invariant specifically (at most one
//! supplier, at most one dirty copy, pairwise compatibility), so a
//! per-retirement oracle can print an actionable message rather than a
//! generic "states incompatible". [`check_all`] sweeps every resident
//! line — the final-state scan both simulators expose as
//! `validate_coherence`.

use crate::cmp::CmpCaches;
use crate::state::CoherState;
use crate::LineAddr;

/// Checks the Figure 2(b) storage invariants for one line across every
/// CMP of the machine.
///
/// # Errors
///
/// Returns a message naming the first violated invariant:
///
/// * more than one supplier-state (`SG`/`E`/`D`/`T`) copy machine-wide,
/// * more than one dirty (`D`/`T`) copy machine-wide,
/// * any pair of copies incompatible under the Figure 2(b) matrix
///   (which also covers "at most one local master per CMP").
pub fn check_line(cmps: &[CmpCaches], line: LineAddr) -> Result<(), String> {
    // (cmp index, core index, state) for every valid copy. Machines have
    // at most cores-per-CMP × nodes copies; a small stack buffer would be
    // overkill — this path only runs when checks are enabled.
    let mut copies: Vec<(usize, usize, CoherState)> = Vec::new();
    for (n, cmp) in cmps.iter().enumerate() {
        for core in 0..cmp.cores() {
            let st = cmp.l2(core).state_of(line);
            if st.is_valid() {
                copies.push((n, core, st));
            }
        }
    }
    let suppliers: Vec<_> = copies.iter().filter(|(_, _, s)| s.is_supplier()).collect();
    if suppliers.len() > 1 {
        return Err(format!(
            "{line}: {} supplier-state copies: {}",
            suppliers.len(),
            render_copies(&copies, |s| s.is_supplier())
        ));
    }
    let dirty: Vec<_> = copies.iter().filter(|(_, _, s)| s.is_dirty()).collect();
    if dirty.len() > 1 {
        return Err(format!(
            "{line}: {} dirty copies: {}",
            dirty.len(),
            render_copies(&copies, |s| s.is_dirty())
        ));
    }
    for (i, &(na, ca, a)) in copies.iter().enumerate() {
        for &(nb, cb, b) in &copies[i + 1..] {
            if !a.compatible_with(b, na == nb) {
                return Err(format!(
                    "{line}: {a} at cmp{na}/core{ca} incompatible with {b} at cmp{nb}/core{cb}"
                ));
            }
        }
    }
    Ok(())
}

fn render_copies(
    copies: &[(usize, usize, CoherState)],
    pick: impl Fn(CoherState) -> bool,
) -> String {
    copies
        .iter()
        .filter(|(_, _, s)| pick(*s))
        .map(|(n, c, s)| format!("{s}@cmp{n}/core{c}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Sweeps every resident line of the machine through [`check_line`].
///
/// # Errors
///
/// Returns the first violation found (lines visited in address order so
/// the report is deterministic).
pub fn check_all(cmps: &[CmpCaches]) -> Result<(), String> {
    let mut lines: Vec<LineAddr> = cmps
        .iter()
        .flat_map(|cmp| (0..cmp.cores()).flat_map(|c| cmp.l2(c).iter().map(|(l, _)| l)))
        .collect();
    lines.sort_unstable();
    lines.dedup();
    for line in lines {
        check_line(cmps, line)?;
    }
    Ok(())
}

/// A canonical snapshot of every resident line: `(line, cmp, core, state)`
/// in sorted order. Two runs that ended in the same storage state produce
/// equal snapshots, so this is the unit the differential harness diffs.
pub fn state_snapshot(cmps: &[CmpCaches]) -> Vec<(LineAddr, usize, usize, CoherState)> {
    let mut snap: Vec<(LineAddr, usize, usize, CoherState)> = cmps
        .iter()
        .enumerate()
        .flat_map(|(n, cmp)| {
            (0..cmp.cores())
                .flat_map(move |c| cmp.l2(c).iter().map(move |(line, st)| (line, n, c, st)))
        })
        .collect();
    snap.sort_unstable_by_key(|&(line, n, c, st)| (line, n, c, st as u8));
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheGeometry;
    use CoherState::*;

    fn machine() -> Vec<CmpCaches> {
        (0..2)
            .map(|_| {
                CmpCaches::new(
                    2,
                    CacheGeometry::from_entries(4, 2),
                    CacheGeometry::from_entries(16, 4),
                )
            })
            .collect()
    }

    #[test]
    fn clean_sharing_passes() {
        let mut m = machine();
        m[0].fill(0, LineAddr(1), Sg);
        m[0].fill(1, LineAddr(1), S);
        m[1].fill(0, LineAddr(1), Sl);
        assert!(check_line(&m, LineAddr(1)).is_ok());
        assert!(check_all(&m).is_ok());
    }

    #[test]
    fn two_suppliers_are_named() {
        let mut m = machine();
        m[0].fill(0, LineAddr(2), E);
        m[1].fill(0, LineAddr(2), D);
        let err = check_line(&m, LineAddr(2)).unwrap_err();
        assert!(err.contains("2 supplier-state copies"), "{err}");
        assert!(err.contains("E@cmp0/core0"), "{err}");
        assert!(err.contains("D@cmp1/core0"), "{err}");
    }

    #[test]
    fn two_dirty_copies_are_reported_as_suppliers_first() {
        let mut m = machine();
        m[0].fill(0, LineAddr(3), D);
        m[1].fill(0, LineAddr(3), T);
        let err = check_line(&m, LineAddr(3)).unwrap_err();
        // D and T are both supplier states, so the supplier check fires.
        assert!(err.contains("supplier"), "{err}");
    }

    #[test]
    fn incompatible_pair_is_located() {
        let mut m = machine();
        m[0].fill(0, LineAddr(4), E);
        m[1].fill(1, LineAddr(4), S);
        let err = check_line(&m, LineAddr(4)).unwrap_err();
        assert!(err.contains("incompatible"), "{err}");
        assert!(err.contains("cmp1/core1"), "{err}");
    }

    #[test]
    fn check_all_finds_the_bad_line_among_good_ones() {
        let mut m = machine();
        m[0].fill(0, LineAddr(1), Sg);
        m[0].fill(0, LineAddr(2), E);
        m[1].fill(0, LineAddr(2), E);
        let err = check_all(&m).unwrap_err();
        assert!(
            err.contains("line2") || err.contains("0x2") || err.contains('2'),
            "{err}"
        );
    }

    #[test]
    fn snapshot_is_canonical() {
        let mut a = machine();
        a[1].fill(0, LineAddr(9), Sl);
        a[0].fill(0, LineAddr(5), E);
        let mut b = machine();
        b[0].fill(0, LineAddr(5), E);
        b[1].fill(0, LineAddr(9), Sl);
        assert_eq!(state_snapshot(&a), state_snapshot(&b));
        assert_eq!(state_snapshot(&a).len(), 2);
    }
}
