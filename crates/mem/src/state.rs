//! The coherence state lattice of the embedded-ring protocol.
//!
//! The protocol (paper §2.2) is MESI enhanced with a Global/Local Master
//! qualifier on Shared and a Tagged state for dirty sharing:
//!
//! | State | Meaning |
//! |-------|---------|
//! | `I`   | Invalid |
//! | `S`   | Shared, plain copy |
//! | `SL`  | Shared, **Local Master**: brought the line into this CMP; supplies local reads |
//! | `SG`  | Shared, **Global Master**: brought the line from memory; supplies remote reads |
//! | `E`   | Exclusive clean |
//! | `D`   | Dirty (Modified) |
//! | `T`   | Tagged: dirty but shared; supplies remote reads, written back on eviction |
//!
//! The *supplier states* are `SG`, `E`, `D`, `T`: at most one cache in the
//! whole machine may hold a given line in any of them, and that cache is the
//! one that services a remote read snoop.

use std::fmt;

use flexsnoop_engine::snap::{SnapError, SnapReader, SnapWriter, Snapshot};

/// A cache line's coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoherState {
    /// Invalid: the line is not present (or has been invalidated).
    #[default]
    I,
    /// Shared: a plain read-only copy.
    S,
    /// Shared Local-Master: the copy that brought the line into this CMP;
    /// supplies reads from other cores in the same CMP.
    Sl,
    /// Shared Global-Master: the copy that brought the line from memory;
    /// supplies remote read snoops. Clean.
    Sg,
    /// Exclusive: the only cached copy anywhere; clean.
    E,
    /// Dirty (Modified): the only cached copy anywhere; memory is stale.
    D,
    /// Tagged: dirty but shared; other caches may hold `S`/`SL` copies.
    /// Supplies remote read snoops and is written back on eviction.
    T,
}

impl CoherState {
    /// All seven states, for exhaustive testing.
    pub const ALL: [CoherState; 7] = [
        CoherState::I,
        CoherState::S,
        CoherState::Sl,
        CoherState::Sg,
        CoherState::E,
        CoherState::D,
        CoherState::T,
    ];

    /// Whether the line is present in the cache (any state but `I`).
    pub fn is_valid(self) -> bool {
        self != CoherState::I
    }

    /// Whether this state can supply a **remote** read snoop
    /// (the paper's supplier states: `SG`, `E`, `D`, `T`).
    pub fn is_supplier(self) -> bool {
        matches!(
            self,
            CoherState::Sg | CoherState::E | CoherState::D | CoherState::T
        )
    }

    /// Whether this state can supply a read from another core in the
    /// **same** CMP (paper §2.2: `SL`, `SG`, `E`, `D`, `T`).
    pub fn supplies_locally(self) -> bool {
        self.is_supplier() || self == CoherState::Sl
    }

    /// Whether the line holds data newer than memory and must be written
    /// back on eviction.
    pub fn is_dirty(self) -> bool {
        matches!(self, CoherState::D | CoherState::T)
    }

    /// Whether a write hit in this state needs no coherence transaction
    /// (the copy is provably the only one in the machine).
    pub fn writable_silently(self) -> bool {
        matches!(self, CoherState::E | CoherState::D)
    }

    /// The supplier's state after servicing a **remote** read snoop.
    ///
    /// `E → SG` (now shared, still global master), `D → T` (dirty shared),
    /// `SG` and `T` keep their state.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-supplier state.
    pub fn after_remote_supply(self) -> CoherState {
        match self {
            CoherState::E => CoherState::Sg,
            CoherState::D => CoherState::T,
            CoherState::Sg => CoherState::Sg,
            CoherState::T => CoherState::T,
            other => panic!("{other} cannot supply a remote read"),
        }
    }

    /// The supplier's state after servicing a read from a core in the
    /// **same** CMP. Same downgrades as the remote case; `SL` stays `SL`.
    ///
    /// # Panics
    ///
    /// Panics if called on a state that cannot supply locally.
    pub fn after_local_supply(self) -> CoherState {
        match self {
            CoherState::Sl => CoherState::Sl,
            other if other.is_supplier() => other.after_remote_supply(),
            other => panic!("{other} cannot supply a local read"),
        }
    }

    /// The state after an Exact-predictor conflict **downgrade**
    /// (paper §4.3.3): the line leaves its supplier state but stays cached
    /// as a local master. Returns `(new_state, needs_writeback)`.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-supplier state.
    pub fn after_downgrade(self) -> (CoherState, bool) {
        match self {
            CoherState::Sg | CoherState::E => (CoherState::Sl, false),
            CoherState::D | CoherState::T => (CoherState::Sl, true),
            other => panic!("{other} is not a supplier state, cannot downgrade"),
        }
    }

    /// Whether a line in `self` at one cache may coexist with a line in
    /// `other` at another cache, given whether the two caches are in the
    /// same CMP (paper Figure 2b; `*` entries require different CMPs).
    pub fn compatible_with(self, other: CoherState, same_cmp: bool) -> bool {
        use CoherState::*;
        // Order the pair to halve the case analysis; the matrix is symmetric.
        let (a, b) = if (self as u8) <= (other as u8) {
            (self, other)
        } else {
            (other, self)
        };
        match (a, b) {
            (I, _) => true,
            (S, S) | (S, Sl) | (S, Sg) | (S, T) => true,
            (Sl, Sl) | (Sl, Sg) | (Sl, T) => !same_cmp,
            _ => false,
        }
    }
}

/// Encoded as a one-byte tag (the variant's position in
/// [`CoherState::ALL`]); decoding rejects out-of-range tags.
impl Snapshot for CoherState {
    fn save_into(&self, w: &mut SnapWriter) {
        w.put_u8(*self as u8);
    }

    fn restore_from(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let tag = r.get_u8()? as usize;
        *self = *CoherState::ALL
            .get(tag)
            .ok_or(SnapError::Corrupt("coherence-state tag out of range"))?;
        Ok(())
    }
}

impl fmt::Display for CoherState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoherState::I => "I",
            CoherState::S => "S",
            CoherState::Sl => "SL",
            CoherState::Sg => "SG",
            CoherState::E => "E",
            CoherState::D => "D",
            CoherState::T => "T",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::CoherState::*;
    use super::*;

    #[test]
    fn supplier_states_match_paper() {
        let suppliers: Vec<_> = CoherState::ALL
            .into_iter()
            .filter(|s| s.is_supplier())
            .collect();
        assert_eq!(suppliers, [Sg, E, D, T]);
    }

    #[test]
    fn local_supply_states_match_paper() {
        let locals: Vec<_> = CoherState::ALL
            .into_iter()
            .filter(|s| s.supplies_locally())
            .collect();
        assert_eq!(locals, [Sl, Sg, E, D, T]);
    }

    #[test]
    fn dirty_states() {
        assert!(D.is_dirty() && T.is_dirty());
        assert!(!Sg.is_dirty() && !E.is_dirty() && !S.is_dirty());
    }

    #[test]
    fn remote_supply_transitions() {
        assert_eq!(E.after_remote_supply(), Sg);
        assert_eq!(D.after_remote_supply(), T);
        assert_eq!(Sg.after_remote_supply(), Sg);
        assert_eq!(T.after_remote_supply(), T);
    }

    #[test]
    fn local_supply_transitions() {
        assert_eq!(Sl.after_local_supply(), Sl);
        assert_eq!(E.after_local_supply(), Sg);
        assert_eq!(D.after_local_supply(), T);
    }

    #[test]
    #[should_panic(expected = "cannot supply")]
    fn plain_shared_cannot_supply_remote() {
        let _ = S.after_remote_supply();
    }

    #[test]
    fn downgrades_per_section_4_3_3() {
        assert_eq!(Sg.after_downgrade(), (Sl, false));
        assert_eq!(E.after_downgrade(), (Sl, false));
        assert_eq!(D.after_downgrade(), (Sl, true));
        assert_eq!(T.after_downgrade(), (Sl, true));
    }

    /// The full Figure 2(b) matrix, rows in paper order.
    /// Entry values: 0 = incompatible, 1 = compatible, 2 = compatible only
    /// if the copies are in different CMPs (the paper's `*`).
    #[rustfmt::skip]
    const FIG_2B: [[u8; 7]; 7] = [
        //         I  S  SL SG E  D  T
        /* I  */ [ 1, 1, 1, 1, 1, 1, 1 ],
        /* S  */ [ 1, 1, 1, 1, 0, 0, 1 ],
        /* SL */ [ 1, 1, 2, 2, 0, 0, 2 ],
        /* SG */ [ 1, 1, 2, 0, 0, 0, 0 ],
        /* E  */ [ 1, 0, 0, 0, 0, 0, 0 ],
        /* D  */ [ 1, 0, 0, 0, 0, 0, 0 ],
        /* T  */ [ 1, 1, 2, 0, 0, 0, 0 ],
    ];

    #[test]
    fn compatibility_matrix_matches_figure_2b() {
        for (i, &a) in CoherState::ALL.iter().enumerate() {
            for (j, &b) in CoherState::ALL.iter().enumerate() {
                let want = FIG_2B[i][j];
                assert_eq!(
                    a.compatible_with(b, false),
                    want >= 1,
                    "{a} vs {b} (different CMP)"
                );
                assert_eq!(
                    a.compatible_with(b, true),
                    want == 1,
                    "{a} vs {b} (same CMP)"
                );
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        for &a in &CoherState::ALL {
            for &b in &CoherState::ALL {
                for same in [false, true] {
                    assert_eq!(
                        a.compatible_with(b, same),
                        b.compatible_with(a, same),
                        "{a} vs {b} same_cmp={same}"
                    );
                }
            }
        }
    }

    #[test]
    fn at_most_one_supplier_follows_from_matrix() {
        // Any two supplier states must be mutually incompatible even across
        // CMPs — this is the storage-level root of the "at most one supplier"
        // invariant.
        for &a in &CoherState::ALL {
            for &b in &CoherState::ALL {
                if a.is_supplier() && b.is_supplier() {
                    assert!(
                        !a.compatible_with(b, false),
                        "{a} and {b} are both suppliers yet compatible"
                    );
                }
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        let names: Vec<String> = CoherState::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["I", "S", "SL", "SG", "E", "D", "T"]);
    }
}
