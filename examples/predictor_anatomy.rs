//! Inside the Supplier Predictors: how each structure behaves as the
//! tracked supplier set grows (the §4.3 design-space intuition, measured
//! on the raw structures rather than in the full simulator).
//!
//! ```text
//! cargo run --release --example predictor_anatomy
//! ```

use flexsnoop_engine::SplitMix64;
use flexsnoop_mem::LineAddr;
use flexsnoop_metrics::Table;
use flexsnoop_predictor::{ExactPredictor, SubsetPredictor, SupersetPredictor, SupplierPredictor};

/// Measures one predictor at a given tracked-set size: insert `tracked`
/// supplier lines, then probe `probes` lines (half tracked, half not) and
/// report the error rates.
fn measure<P: SupplierPredictor>(mut p: P, tracked: u64, rng: &mut SplitMix64) -> (f64, f64, u64) {
    let lines: Vec<LineAddr> = (0..tracked)
        .map(|_| LineAddr(rng.next_below(1 << 30)))
        .collect();
    let mut downgraded = Vec::new();
    for &l in &lines {
        if let Some(victim) = p.supplier_gained(l) {
            downgraded.push(victim);
        }
    }
    // Lines the Exact predictor downgraded are genuinely no longer
    // suppliable; drop them from the positive probe set.
    let live: Vec<LineAddr> = lines
        .iter()
        .copied()
        .filter(|l| !downgraded.contains(l))
        .collect();
    let mut false_neg = 0u64;
    let mut pos_probes = 0u64;
    // Sample across insertion recency (LRU keeps the newest entries).
    let stride = (live.len() / 2_000).max(1);
    for &l in live.iter().step_by(stride).take(2_000) {
        pos_probes += 1;
        if !p.predict(l) {
            false_neg += 1;
        }
    }
    let mut false_pos = 0u64;
    let mut neg_probes = 0u64;
    for _ in 0..2_000 {
        let probe = LineAddr((1 << 40) + rng.next_below(1 << 30));
        neg_probes += 1;
        if p.predict(probe) {
            false_pos += 1;
        }
    }
    (
        false_neg as f64 / pos_probes.max(1) as f64,
        false_pos as f64 / neg_probes.max(1) as f64,
        downgraded.len() as u64,
    )
}

fn main() {
    let mut table = Table::with_columns(&[
        "predictor",
        "tracked lines",
        "FN rate",
        "FP rate",
        "downgrades",
    ]);
    for tracked in [512u64, 2_048, 8_192, 32_768] {
        let mut rng = SplitMix64::new(tracked);
        let (fnr, fpr, _) = measure(SubsetPredictor::sub2k(), tracked, &mut rng);
        table.row(vec![
            "Sub2k".into(),
            tracked.to_string(),
            format!("{fnr:.3}"),
            format!("{fpr:.3}"),
            "-".into(),
        ]);
        let mut rng = SplitMix64::new(tracked);
        let (fnr, fpr, _) = measure(SupersetPredictor::y2k(), tracked, &mut rng);
        table.row(vec![
            "SupY2k".into(),
            tracked.to_string(),
            format!("{fnr:.3}"),
            format!("{fpr:.3}"),
            "-".into(),
        ]);
        let mut rng = SplitMix64::new(tracked);
        let (fnr, fpr, dg) = measure(ExactPredictor::exa2k(), tracked, &mut rng);
        table.row(vec![
            "Exa2k".into(),
            tracked.to_string(),
            format!("{fnr:.3}"),
            format!("{fpr:.3}"),
            dg.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Sub2k: FP rate is structurally zero; FN rate climbs once the\n\
         supplier set exceeds the table. SupY2k: FN rate is structurally\n\
         zero; FP rate climbs as the Bloom filter saturates. Exa2k: both\n\
         error rates are zero — purchased with downgrades once the set\n\
         exceeds the table (paper §4.3)."
    );
}
