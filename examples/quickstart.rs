//! Quickstart: compare all seven snooping algorithms on one workload.
use flexsnoop::{run_workload, Algorithm};
use flexsnoop_workload::profiles;

fn main() -> Result<(), String> {
    let workload = profiles::specweb().with_accesses(2_000);
    println!("workload: {} ({} cores)", workload.name, workload.cores);
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "algorithm", "snoops/rd", "hops/rd", "exec cycles", "energy (uJ)", "cache-sup%"
    );
    for alg in Algorithm::PAPER_SET {
        let s = run_workload(&workload, alg, None, 42)?;
        println!(
            "{:<12} {:>8.2} {:>10.2} {:>12} {:>12.1} {:>10.1}",
            alg.to_string(),
            s.snoops_per_read(),
            s.ring_hops_per_read(),
            s.exec_cycles.as_u64(),
            s.energy_nj() / 1000.0,
            s.cache_supply_fraction() * 100.0
        );
    }
    Ok(())
}
