//! Walk through individual snoop transactions hop by hop — the per-request
//! view behind the paper's Figure 3 (Lazy vs Eager vs Oracle message
//! flows).
//!
//! A supplier is planted four hops downstream of the requester, then a
//! single read is traced under three algorithms:
//!
//! ```text
//! cargo run --release --example ring_trace
//! ```

use flexsnoop::{energy_model_for, Algorithm, MachineConfig, Simulator, VecStream};
use flexsnoop_engine::Cycles;
use flexsnoop_mem::LineAddr;
use flexsnoop_workload::{AccessStream, MemAccess};

fn trace_one(algorithm: Algorithm) -> Result<(), String> {
    let machine = MachineConfig::isca2006(1);
    // Core 4 (on cmp4) warms line 0x100 first, becoming the supplier; core
    // 0 then reads it, so its request travels cmp1..cmp4 on the ring.
    let mut streams: Vec<Box<dyn AccessStream + Send>> = Vec::new();
    for core in 0..machine.total_cores() {
        let accesses = match core {
            4 => vec![MemAccess::read(LineAddr(0x100), Cycles(10))],
            0 => vec![
                // Idle long enough for cmp4's fill to complete.
                MemAccess::read(LineAddr(0x8), Cycles(10)),
                MemAccess::read(LineAddr(0x100), Cycles(4_000)),
            ],
            _ => vec![],
        };
        streams.push(Box::new(VecStream::new(accesses)));
    }
    let predictor = algorithm.default_predictor();
    let mut sim = Simulator::new(
        machine,
        algorithm,
        predictor,
        energy_model_for(&predictor),
        streams,
        2,
    )?;
    sim.enable_timeline(16);
    sim.run();
    println!("==== {algorithm} ====");
    // The last recorded transaction is core 0's read of the warmed line.
    let last = sim
        .timeline()
        .transactions()
        .last()
        .ok_or("no transactions recorded")?;
    print!("{}", sim.timeline().render(last));
    println!();
    Ok(())
}

fn main() -> Result<(), String> {
    println!(
        "one read request, supplier 4 hops downstream (requester cmp0,\n\
         supplier cmp4), traced per gateway event:\n"
    );
    for algorithm in [Algorithm::Lazy, Algorithm::Eager, Algorithm::Oracle] {
        trace_one(algorithm)?;
    }
    println!(
        "Lazy snoops at every hop before forwarding; Eager forwards first\n\
         and lets the reply trail; Oracle forwards silently and snoops only\n\
         at the supplier (paper Figure 3)."
    );
    Ok(())
}
