//! Per-application SPLASH-2 study: the four main figure metrics for every
//! app in the suite, one algorithm pair at a time.
//!
//! This is the view behind the paper's SPLASH-2 geometric-mean bars: which
//! applications drive each effect. Usage:
//!
//! ```text
//! cargo run --release --example splash_study [accesses_per_core]
//! ```

use flexsnoop::{run_algorithms, Algorithm};
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

fn main() {
    let accesses: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6_000);
    let algorithms = [
        Algorithm::Lazy,
        Algorithm::Eager,
        Algorithm::SupersetCon,
        Algorithm::SupersetAgg,
        Algorithm::Exact,
    ];
    let mut table = Table::with_columns(&[
        "app",
        "algorithm",
        "snoops/rd",
        "msgs (xLazy)",
        "exec (xLazy)",
        "energy (xLazy)",
        "supply%",
    ]);
    for app in profiles::splash2_apps() {
        let app = app.with_accesses(accesses);
        let results = run_algorithms(&app, &algorithms, 42);
        let lazy = results
            .iter()
            .find(|(a, _)| *a == Algorithm::Lazy)
            .map(|(_, s)| s.clone())
            .expect("lazy baseline");
        for (alg, stats) in &results {
            table.row(vec![
                app.name.clone(),
                alg.to_string(),
                format!("{:.2}", stats.snoops_per_read()),
                format!(
                    "{:.2}",
                    stats.read_ring_hops as f64 / lazy.read_ring_hops as f64
                ),
                format!("{:.2}", stats.exec_time() / lazy.exec_time()),
                format!("{:.2}", stats.energy_nj() / lazy.energy_nj()),
                format!("{:.0}", stats.cache_supply_fraction() * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(normalize columns are relative to Lazy within each app)");
}
