//! The adaptive system the paper envisions (§6.1.5): Superset Con and
//! Superset Agg share one predictor and differ only in the action taken on
//! a positive prediction, so a machine can switch between them at run time
//! — aggressive for performance, conservative when energy must be saved.
//!
//! This example sweeps the `SupersetDyn` governor's energy budget and
//! prints the resulting energy/performance frontier between the two fixed
//! policies.
//!
//! ```text
//! cargo run --release --example adaptive_switching
//! ```

use flexsnoop::{run_workload, Algorithm, DynPolicy};
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

fn main() -> Result<(), String> {
    let workload = profiles::specweb().with_accesses(8_000);
    println!(
        "workload: {} ({} accesses/core)\n",
        workload.name, workload.accesses_per_core
    );
    let mut table = Table::with_columns(&[
        "policy",
        "exec cycles",
        "energy [uJ]",
        "snoops/read",
        "msgs/read",
    ]);
    let mut run = |name: String, alg: Algorithm| -> Result<f64, String> {
        let s = run_workload(&workload, alg, None, 7)?;
        table.row(vec![
            name,
            s.exec_cycles.as_u64().to_string(),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.2}", s.snoops_per_read()),
            format!("{:.2}", s.ring_hops_per_read()),
        ]);
        // The workload's energy rate in nJ per kilocycle, which is the
        // unit the governor budgets in.
        Ok(s.energy_nj() / (s.exec_cycles.as_u64() as f64 / 1000.0))
    };
    let con_rate = run("SupersetCon (fixed)".into(), Algorithm::SupersetCon)?;
    // Sweep budgets bracketing the conservative policy's natural rate: a
    // budget below it forces Con behaviour throughout; well above it the
    // governor never needs to throttle and runs aggressive.
    for factor in [0.8, 1.0, 1.2, 1.5, 2.0] {
        let budget = con_rate * factor;
        run(
            format!("Dyn budget={budget:.0} nJ/kcycle"),
            Algorithm::SupersetDyn(DynPolicy::EnergyBudget(budget)),
        )?;
    }
    run("SupersetAgg (fixed)".into(), Algorithm::SupersetAgg)?;
    println!("{}", table.render());
    println!(
        "Low budgets behave like Superset Con (frugal); high budgets like\n\
         Superset Agg (fast). Intermediate budgets trade between the two."
    );
    Ok(())
}
