//! Machine-scaling study: how the embedded-ring approach behaves as the
//! node count grows.
//!
//! The paper argues (§2.1.4) that ring snooping "is not scalable to large
//! numbers of processors [but] is appropriate for CMP-based machines" in
//! the 8–16 node range: snoop latency grows linearly with the ring, and
//! the adaptive algorithms blunt — but cannot remove — that growth. This
//! example quantifies the claim.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use flexsnoop::{Algorithm, Simulator};
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

fn main() -> Result<(), String> {
    let mut table = Table::with_columns(&[
        "nodes",
        "algorithm",
        "snoops/rd",
        "read latency [cyc]",
        "energy/read [nJ]",
    ]);
    for nodes in [4usize, 8, 12, 16] {
        // One core per node, uniform shared pool: every read finds a
        // supplier at a uniform ring distance.
        let workload = profiles::uniform_microbench(nodes, 4_000);
        for algorithm in [Algorithm::Lazy, Algorithm::Eager, Algorithm::SupersetAgg] {
            let mut sim = Simulator::for_workload_on(&workload, algorithm, None, 99, nodes)?;
            let s = sim.run();
            sim.validate_coherence()?;
            table.row(vec![
                nodes.to_string(),
                algorithm.to_string(),
                format!("{:.2}", s.snoops_per_read()),
                format!("{:.0}", s.read_latency.mean()),
                format!("{:.1}", s.energy_nj() / s.read_txns as f64),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Latency and energy grow roughly linearly with the ring; adaptive\n\
         filtering keeps the snoop count flat but cannot shorten the ring\n\
         itself — the paper's medium-scale (8-16 node) sweet spot."
    );
    Ok(())
}
