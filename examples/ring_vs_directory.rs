//! Ring snooping vs. a directory protocol on the same machine (§2.1).
//!
//! The paper motivates the embedded ring as the simple, low-cost option
//! and directories as the scalable one that "introduce[s] a time-consuming
//! indirection in all transactions". This experiment runs both protocols
//! on identical hardware (caches, torus, DRAM timing) and identical
//! access traces:
//!
//! ```text
//! cargo run --release --example ring_vs_directory [accesses]
//! ```

use flexsnoop::{run_workload, Algorithm};
use flexsnoop_directory::DirSimulator;
use flexsnoop_metrics::Table;
use flexsnoop_workload::profiles;

fn main() -> Result<(), String> {
    let accesses: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    let mut table = Table::with_columns(&[
        "workload",
        "protocol",
        "exec cycles",
        "mean read lat",
        "energy [uJ]",
        "notes",
    ]);
    for workload in [
        profiles::splash2_apps().remove(0).with_accesses(accesses), // barnes
        profiles::specjbb().with_accesses(accesses),
        profiles::specweb().with_accesses(accesses),
    ] {
        for (name, alg) in [
            ("ring/Lazy", Algorithm::Lazy),
            ("ring/SupAgg", Algorithm::SupersetAgg),
        ] {
            let s = run_workload(&workload, alg, None, 77)?;
            table.row(vec![
                workload.name.clone(),
                name.into(),
                s.exec_cycles.as_u64().to_string(),
                format!("{:.0}", s.read_latency.mean()),
                format!("{:.1}", s.energy_nj() / 1000.0),
                format!("{:.2} snoops/rd", s.snoops_per_read()),
            ]);
        }
        let mut dir = DirSimulator::for_workload(&workload, 77, 8)?;
        let s = dir.run();
        dir.validate_coherence()?;
        table.row(vec![
            workload.name.clone(),
            "directory".into(),
            s.exec_cycles.as_u64().to_string(),
            format!("{:.0}", s.read_latency.mean()),
            format!("{:.1}", s.energy_nj() / 1000.0),
            format!("{:.0}% 3-hop", s.three_hop_fraction() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nBoth protocols run the same traces on the same caches, torus and\n\
         DRAM. On memory-bound workloads (SPECjbb/web) the directory's 2-hop\n\
         home path beats even the best ring algorithm's full circulation; on\n\
         sharing-heavy SPLASH-2 the ring's direct cache-to-cache supply wins\n\
         and the directory pays its indirection plus 3-hop dirty reads —\n\
         while needing per-line home state the ring does without (§2.1)."
    );
    Ok(())
}
