//! Trace-driven methodology demo (paper §5.1): record a workload's access
//! trace once, then replay the *identical* trace under different snooping
//! algorithms — "we compare the different snooping algorithms with exactly
//! the same traces".
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use flexsnoop::{energy_model_for, Algorithm, MachineConfig, Simulator, VecStream};
use flexsnoop_workload::{profiles, AccessStream, Trace};

fn main() -> Result<(), String> {
    // 1. Record a trace from the SPECjbb generator.
    let profile = profiles::specjbb().with_accesses(4_000);
    let mut streams = profile.streams(123);
    let trace = Trace::record(&mut streams, profile.accesses_per_core);
    println!(
        "recorded trace: {} cores x {} accesses",
        trace.cores(),
        trace.core(0).len()
    );

    // 2. Round-trip through the on-disk text format.
    let text = trace.to_text();
    let parsed: Trace = text.parse().map_err(|e| format!("parse: {e}"))?;
    assert_eq!(parsed, trace, "text round trip must be lossless");
    println!("text format round trip: {} bytes", text.len());

    // 3. Replay the identical trace under each algorithm.
    let machine = MachineConfig::isca2006(1);
    println!(
        "\n{:<12} {:>12} {:>10} {:>12}",
        "algorithm", "exec cycles", "snoops/rd", "energy [uJ]"
    );
    for alg in [Algorithm::Lazy, Algorithm::Eager, Algorithm::SupersetAgg] {
        let streams: Vec<Box<dyn AccessStream + Send>> = VecStream::from_trace(&parsed)
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn AccessStream + Send>)
            .collect();
        let predictor = alg.default_predictor();
        let mut sim = Simulator::new(
            machine,
            alg,
            predictor,
            energy_model_for(&predictor),
            streams,
            profile.accesses_per_core,
        )?;
        let s = sim.run();
        sim.validate_coherence()?;
        println!(
            "{:<12} {:>12} {:>10.2} {:>12.1}",
            alg.to_string(),
            s.exec_cycles.as_u64(),
            s.snoops_per_read(),
            s.energy_nj() / 1000.0
        );
    }
    Ok(())
}
